//! End-to-end query tracing: deterministic, clock-injected spans and events for the
//! serving pipeline.
//!
//! Each sampled query gets a [`QueryTrace`]: a fixed sequence of stage [`Span`]s (batch
//! formation, queue wait, cache lookup, cluster fetch, NNS filtering, MLP ranking), one
//! child [`FetchSpan`] per cluster sub-request annotated with its shard, and the fault
//! [`FetchEvent`]s (timeout/retry/promotion/degrade) the resilient router took on the
//! batch's behalf. Traces are collected into a bounded, head-retained [`TraceLog`] with
//! seeded head-based sampling — whether a query is sampled depends only on
//! `(seed, query id)`, never on which worker served it — so on a
//! [`ManualClock`](crate::clock::ManualClock) the rendered trace JSON is byte-identical
//! at any worker count. The log also keeps a slow-query log (the top-K worst traces by
//! end-to-end latency) and exports Chrome-trace-event JSON loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Timebases: the threaded runtime injects its own clock into every worker's tracer, so
//! spans live on measured time; the discrete-event replay keeps measured stage offsets
//! but re-anchors them onto the virtual timeline at finalization, so spans nest inside
//! the virtual end-to-end latency.

use std::sync::Arc;

use crate::clock::{Clock, WallClock};
use crate::telemetry::{escape, StageBreakdown};

/// Configuration of the tracing layer. Tracing is off unless
/// [`ServeEngine::enable_tracing`](crate::engine::ServeEngine::enable_tracing) is called
/// with `sample_every > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sample one query in `sample_every` (seeded hash of the query id, not a stride,
    /// so sampling is unbiased under any arrival pattern). `0` disables tracing.
    pub sample_every: u64,
    /// Seed of the sampling hash; the sampled set is a pure function of `(seed, id)`.
    pub seed: u64,
    /// Maximum retained traces: the log keeps the first `capacity` sampled queries by
    /// id (head retention), which is what stays deterministic when worker counts vary.
    pub capacity: usize,
    /// Slow-query log depth: the `slow_k` worst traces by end-to-end latency.
    pub slow_k: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample_every: 16,
            seed: 0x1A25,
            capacity: 4096,
            slow_k: 8,
        }
    }
}

impl TraceConfig {
    /// Whether this configuration samples anything at all.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Whether query `id` is sampled (a pure function of the seed and the id).
    pub fn samples(&self, id: u64) -> bool {
        self.sample_every > 0 && mix(self.seed, id).is_multiple_of(self.sample_every)
    }
}

/// SplitMix64-style avalanche of `(seed, id)`; the sampling decision must not depend on
/// anything schedule-dependent.
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pipeline stages a trace attributes time to, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Arrival (or submission) until the batcher flushed the query's batch.
    BatchForm,
    /// Flush until a worker started serving the batch.
    QueueWait,
    /// Cache probe phase of pooling (hit copies, miss bookkeeping, coalescing).
    CacheLookup,
    /// The shard fetch window (in-process or over sockets), sub-spans per sub-request.
    ClusterFetch,
    /// LSH signatures + TCAM candidate search.
    NnsFilter,
    /// DLRM MLP ranking of the filtered candidates.
    MlpRank,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::BatchForm,
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::ClusterFetch,
        Stage::NnsFilter,
        Stage::MlpRank,
    ];

    /// Stable snake_case name used in reports and exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::BatchForm => "batch_form",
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::ClusterFetch => "cluster_fetch",
            Stage::NnsFilter => "nns_filter",
            Stage::MlpRank => "mlp_rank",
        }
    }
}

/// One stage interval on the trace's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Which stage the interval belongs to.
    pub stage: Stage,
    /// Start, microseconds on the trace timeline.
    pub begin_us: f64,
    /// End, microseconds on the trace timeline.
    pub end_us: f64,
}

impl Span {
    /// Span length in microseconds (clamped non-negative).
    pub fn duration_us(&self) -> f64 {
        (self.end_us - self.begin_us).max(0.0)
    }
}

/// What the cluster router did, recorded per event while a traced batch was fetching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchEventKind {
    /// A sub-request was dispatched to a shard (initial send or a retry's send).
    Dispatch,
    /// A hedge sub-request was dispatched to a replica-holding shard.
    Hedge,
    /// A shard's reply was received.
    Reply,
    /// An attempt expired — its deadline passed or its shard went down.
    Timeout,
    /// The router decided to retry the unit (the following dispatch is the retry).
    Retry,
    /// A dead shard's replicated rows were promoted to a surviving shard.
    Promotion,
    /// The unit's rows were zero-filled after the retry budget ran out.
    Degrade,
}

impl FetchEventKind {
    /// Stable snake_case name used in reports and exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            FetchEventKind::Dispatch => "dispatch",
            FetchEventKind::Hedge => "hedge",
            FetchEventKind::Reply => "reply",
            FetchEventKind::Timeout => "timeout",
            FetchEventKind::Retry => "retry",
            FetchEventKind::Promotion => "promotion",
            FetchEventKind::Degrade => "degrade",
        }
    }
}

/// One router event during a traced fetch. `tag` ties dispatch/reply/timeout events to
/// a single attempt; decision events (retry/promotion/degrade) carry tag 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchEvent {
    /// What happened.
    pub kind: FetchEventKind,
    /// The shard the event concerns (the expired shard for timeouts, the new target
    /// for retries/promotions, the unit's home shard for degrades).
    pub shard: u32,
    /// The attempt's wire tag, 0 for decision events.
    pub tag: u64,
    /// When it happened, microseconds on the tracer's clock.
    pub at_us: f64,
}

/// A server-side span measured *at the shard node itself* and shipped back to the
/// router over the transport's trace context (or handed over directly by an
/// in-process shard worker). Unlike the router-side [`FetchSpan`], these durations
/// separate where the node's time went: waiting in its input queue, probing its
/// node cache, and reading resident storage.
///
/// All fields are durations in microseconds on the node's own clock — the
/// in-process path measures them on the tracer's injected clock (frozen on a
/// [`ManualClock`](crate::clock::ManualClock), keeping traces byte-deterministic),
/// the UDS path measures wall time at the remote process.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeSpan {
    /// Time the sub-request waited in the node's input queue before a worker
    /// picked it up.
    pub queue_wait_us: f64,
    /// Time spent probing the node's hot-row cache (0 when the node runs
    /// uncached).
    pub cache_probe_us: f64,
    /// Time spent reading rows from the node's resident storage.
    pub storage_read_us: f64,
}

/// A node span tied to the attempt that produced it, staged until finalization
/// renumbers tags and attaches it to the matching [`FetchSpan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct NodeSpanRecord {
    /// Shard that measured the span.
    pub shard: u32,
    /// The attempt's wire tag (renumbered alongside the fetch events).
    pub tag: u64,
    /// The measured span.
    pub span: NodeSpan,
}

/// One cluster sub-request: a child span of the [`Stage::ClusterFetch`] stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchSpan {
    /// Shard the sub-request was sent to.
    pub shard: u32,
    /// Attempt tag, renumbered per batch in dispatch order (1, 2, ...) so traces are
    /// independent of the router's global tag counter.
    pub tag: u64,
    /// Whether this attempt was a hedge.
    pub hedge: bool,
    /// Dispatch time on the trace timeline.
    pub begin_us: f64,
    /// Reply/expiry time, or the fetch stage's end for abandoned attempts.
    pub end_us: f64,
    /// Whether a reply or expiry closed the span (`false`: abandoned, e.g. a hedge
    /// loser drained after the winner landed).
    pub completed: bool,
    /// The shard node's own server-side span, when the reply carried one (replies
    /// on traced fetches do; timeouts and abandoned attempts have none).
    pub node: Option<NodeSpan>,
}

/// The full trace of one sampled query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The query's id (also the Chrome-trace `tid`, so Perfetto groups by query).
    pub id: u64,
    /// End-to-end start: arrival (simulated path) or submission (threaded path).
    pub start_us: f64,
    /// End-to-end completion on the same timeline.
    pub end_us: f64,
    /// The six stage spans, in [`Stage::ALL`] order.
    pub spans: Vec<Span>,
    /// Cache hits in the query's batch during pooling.
    pub cache_hits: u64,
    /// Cache misses (rows fetched from shards) in the query's batch.
    pub cache_misses: u64,
    /// Misses coalesced onto an in-flight fetch in the query's batch.
    pub cache_coalesced: u64,
    /// One child span per cluster sub-request of the query's batch.
    pub fetch: Vec<FetchSpan>,
    /// Fault/decision events (timeout/retry/promotion/degrade) in routing order.
    pub events: Vec<FetchEvent>,
}

impl QueryTrace {
    /// End-to-end latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        (self.end_us - self.start_us).max(0.0)
    }

    /// The span of `stage`, if recorded.
    pub fn span(&self, stage: Stage) -> Option<&Span> {
        self.spans.iter().find(|span| span.stage == stage)
    }
}

/// Pooling-phase trace capture, threaded down through
/// [`RowSource`](crate::shard::RowSource) so the cluster router can attach its events.
#[derive(Debug)]
pub(crate) struct PoolTrace {
    /// The tracer's clock: fetch events are stamped on this timeline so a frozen
    /// manual clock freezes them too.
    pub clock: Arc<dyn Clock>,
    /// Cache hits over the batch.
    pub hits: u64,
    /// Cache misses (fetched rows) over the batch.
    pub misses: u64,
    /// Coalesced misses over the batch.
    pub coalesced: u64,
    /// Fetch window start on the tracer clock.
    pub fetch_begin_us: f64,
    /// Fetch window end on the tracer clock.
    pub fetch_end_us: f64,
    /// Router events drained from the row source after the fetch.
    pub events: Vec<FetchEvent>,
    /// Shard-node server spans drained from the row source after the fetch.
    pub node_spans: Vec<NodeSpanRecord>,
}

impl PoolTrace {
    pub(crate) fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            hits: 0,
            misses: 0,
            coalesced: 0,
            fetch_begin_us: 0.0,
            fetch_end_us: 0.0,
            events: Vec::new(),
            node_spans: Vec::new(),
        }
    }
}

/// Measured marks of one traced batch, staged between `process_batch` and the
/// path-specific finalization (which knows completion times).
#[derive(Debug, Clone)]
pub(crate) struct BatchScratch {
    /// Pooling start on the tracer clock.
    pub pool_begin_us: f64,
    /// Pooling end (cache + fetch + accumulate done).
    pub pool_end_us: f64,
    /// NNS filtering end.
    pub filter_end_us: f64,
    /// MLP ranking end.
    pub rank_end_us: f64,
    /// Fetch window start (within pooling).
    pub fetch_begin_us: f64,
    /// Fetch window end.
    pub fetch_end_us: f64,
    /// Batch-wide cache hits.
    pub hits: u64,
    /// Batch-wide cache misses.
    pub misses: u64,
    /// Batch-wide coalesced misses.
    pub coalesced: u64,
    /// Router events recorded during the fetch, on the tracer clock.
    pub events: Vec<FetchEvent>,
    /// Shard-node server spans that arrived with the fetch's replies.
    pub node_spans: Vec<NodeSpanRecord>,
}

/// The per-engine tracer: sampling config, injected clock, staged batch marks, and the
/// bounded log. Cloned with its engine (worker clones start their own logs).
#[derive(Debug, Clone)]
pub(crate) struct Tracer {
    config: TraceConfig,
    clock: Arc<dyn Clock>,
    pending: Option<BatchScratch>,
    log: TraceLog,
}

impl Tracer {
    pub(crate) fn new(config: TraceConfig) -> Self {
        Self {
            config,
            clock: Arc::new(WallClock::new()),
            pending: None,
            log: TraceLog::new(config.capacity, config.slow_k),
        }
    }

    /// Replace the tracer's clock (the threaded runtime injects its own so spans and
    /// queue timestamps share a timeline).
    pub(crate) fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    pub(crate) fn clock(&self) -> Arc<dyn Clock> {
        self.clock.clone()
    }

    pub(crate) fn config(&self) -> TraceConfig {
        self.config
    }

    /// Whether any of `ids` is sampled — the per-batch gate that keeps untraced
    /// batches on the exact pre-tracing code path.
    pub(crate) fn wants(&self, mut ids: impl Iterator<Item = u64>) -> bool {
        ids.any(|id| self.config.samples(id))
    }

    /// Stage a finished batch's marks until the serving path finalizes them.
    pub(crate) fn stash(&mut self, scratch: BatchScratch) {
        self.pending = Some(scratch);
    }

    /// Reset the log and any staged batch (worker clones call this via
    /// `reset_stats`).
    pub(crate) fn reset(&mut self) {
        self.pending = None;
        self.log = TraceLog::new(self.config.capacity, self.config.slow_k);
    }

    /// Take the accumulated log, leaving an empty one behind.
    pub(crate) fn take_log(&mut self) -> TraceLog {
        std::mem::replace(
            &mut self.log,
            TraceLog::new(self.config.capacity, self.config.slow_k),
        )
    }

    /// Finalize the staged batch into per-query traces and stage histograms.
    ///
    /// `queries` is `(id, start_us)` per request in the batch — arrival times on the
    /// simulated path, submission times on the threaded path. `virtual_start_us` is
    /// the simulated path's service start: when set, measured marks are shifted so
    /// pooling begins there (re-anchoring measured offsets onto the virtual
    /// timeline); the threaded path passes `None` and keeps marks as measured.
    /// `end_us` is the batch's completion on the same timeline as `queries`.
    pub(crate) fn finalize_batch(
        &mut self,
        queries: &[(u64, f64)],
        trigger_us: f64,
        virtual_start_us: Option<f64>,
        end_us: f64,
        stages: &mut StageBreakdown,
    ) {
        let Some(mut scratch) = self.pending.take() else {
            return;
        };
        normalize_tags(&mut scratch.events, &mut scratch.node_spans);
        let shift = virtual_start_us.map_or(0.0, |start| start - scratch.pool_begin_us);
        let pool_begin = scratch.pool_begin_us + shift;
        let pool_end = scratch.pool_end_us + shift;
        let filter_end = scratch.filter_end_us + shift;
        let rank_end = scratch.rank_end_us + shift;
        let fetch_begin = scratch.fetch_begin_us + shift;
        let fetch_end = scratch.fetch_end_us + shift;
        let fetch = assemble_fetch_spans(&scratch.events, &scratch.node_spans, shift, fetch_end);
        let events: Vec<FetchEvent> = scratch
            .events
            .iter()
            .filter(|event| {
                matches!(
                    event.kind,
                    FetchEventKind::Timeout
                        | FetchEventKind::Retry
                        | FetchEventKind::Promotion
                        | FetchEventKind::Degrade
                )
            })
            .map(|event| FetchEvent {
                at_us: event.at_us + shift,
                ..*event
            })
            .collect();
        for &(id, start_us) in queries {
            if !self.config.samples(id) {
                continue;
            }
            let spans = vec![
                Span {
                    stage: Stage::BatchForm,
                    begin_us: start_us,
                    end_us: trigger_us.max(start_us),
                },
                Span {
                    stage: Stage::QueueWait,
                    begin_us: trigger_us.max(start_us),
                    end_us: pool_begin,
                },
                Span {
                    stage: Stage::CacheLookup,
                    begin_us: pool_begin,
                    end_us: fetch_begin,
                },
                Span {
                    stage: Stage::ClusterFetch,
                    begin_us: fetch_begin,
                    end_us: fetch_end,
                },
                Span {
                    stage: Stage::NnsFilter,
                    begin_us: pool_end,
                    end_us: filter_end,
                },
                Span {
                    stage: Stage::MlpRank,
                    begin_us: filter_end,
                    end_us: rank_end,
                },
            ];
            let trace = QueryTrace {
                id,
                start_us,
                end_us: end_us.max(start_us),
                spans,
                cache_hits: scratch.hits,
                cache_misses: scratch.misses,
                cache_coalesced: scratch.coalesced,
                fetch: fetch.clone(),
                events: events.clone(),
            };
            stages.record(&trace);
            self.log.push(trace);
        }
    }
}

/// Renumber attempt tags to 1, 2, ... by first appearance (dispatch order), so traces
/// never leak the router's global tag counter — its value depends on how many batches
/// a worker's router clone has served (scheduling), not on the query. Decision events
/// (retry/promotion/degrade) keep their sentinel tag 0. Node-span records arrived with
/// replies, so their raw tags are always in the map; they renumber through the same
/// order so they still match their [`FetchSpan`] after normalization.
fn normalize_tags(events: &mut [FetchEvent], node_spans: &mut [NodeSpanRecord]) {
    let mut order: Vec<u64> = Vec::new();
    for event in events.iter_mut() {
        if matches!(
            event.kind,
            FetchEventKind::Dispatch
                | FetchEventKind::Hedge
                | FetchEventKind::Reply
                | FetchEventKind::Timeout
        ) {
            event.tag = match order.iter().position(|&tag| tag == event.tag) {
                Some(position) => position as u64 + 1,
                None => {
                    order.push(event.tag);
                    order.len() as u64
                }
            };
        }
    }
    for record in node_spans.iter_mut() {
        if let Some(position) = order.iter().position(|&tag| tag == record.tag) {
            record.tag = position as u64 + 1;
        }
    }
}

/// Build child spans from the raw event stream: dispatch/hedge events open a span,
/// a reply or timeout with the same `(tag, shard)` closes it, and anything left open
/// (abandoned hedge losers, stragglers) is closed at the fetch window's end. Node
/// spans shipped back with replies attach to the attempt that produced them by the
/// same `(tag, shard)` key.
fn assemble_fetch_spans(
    events: &[FetchEvent],
    node_spans: &[NodeSpanRecord],
    shift: f64,
    fetch_end_us: f64,
) -> Vec<FetchSpan> {
    let mut spans: Vec<FetchSpan> = Vec::new();
    for event in events {
        match event.kind {
            FetchEventKind::Dispatch | FetchEventKind::Hedge => spans.push(FetchSpan {
                shard: event.shard,
                tag: event.tag,
                hedge: event.kind == FetchEventKind::Hedge,
                begin_us: event.at_us + shift,
                end_us: fetch_end_us,
                completed: false,
                node: None,
            }),
            FetchEventKind::Reply | FetchEventKind::Timeout => {
                if let Some(span) = spans.iter_mut().find(|span| {
                    span.tag == event.tag && span.shard == event.shard && !span.completed
                }) {
                    span.end_us = (event.at_us + shift).max(span.begin_us);
                    span.completed = true;
                }
            }
            _ => {}
        }
    }
    for record in node_spans {
        if let Some(span) = spans
            .iter_mut()
            .find(|span| span.tag == record.tag && span.shard == record.shard)
        {
            span.node = Some(record.span);
        }
    }
    spans
}

/// The bounded trace log: head-retained sampled traces (sorted by query id) plus the
/// slow-query log (top-K by end-to-end latency). Merging worker logs reproduces the
/// single-worker log exactly, because each worker sees its queries in increasing id
/// order and head retention commutes with the union.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceLog {
    capacity: usize,
    slow_k: usize,
    sampled: u64,
    traces: Vec<QueryTrace>,
    slow: Vec<QueryTrace>,
}

impl TraceLog {
    /// An empty log retaining at most `capacity` traces and `slow_k` slow queries.
    pub fn new(capacity: usize, slow_k: usize) -> Self {
        Self {
            capacity,
            slow_k,
            sampled: 0,
            traces: Vec::new(),
            slow: Vec::new(),
        }
    }

    /// Record a finalized trace (head retention + slow-log insertion).
    pub fn push(&mut self, trace: QueryTrace) {
        self.sampled += 1;
        self.insert_slow(&trace);
        if self.traces.len() < self.capacity {
            self.traces.push(trace);
        }
    }

    fn insert_slow(&mut self, trace: &QueryTrace) {
        if self.slow_k == 0 {
            return;
        }
        // Worst first; ties break toward the lower id so merges are deterministic.
        let position = self
            .slow
            .iter()
            .position(|other| (trace.latency_us(), other.id) > (other.latency_us(), trace.id))
            .unwrap_or(self.slow.len());
        if position < self.slow_k {
            self.slow.insert(position, trace.clone());
            self.slow.truncate(self.slow_k);
        }
    }

    /// Union another log into this one (worker logs at shutdown). Retention limits
    /// take the larger of the two so a default log can absorb a configured one.
    pub fn merge(&mut self, other: &TraceLog) {
        self.capacity = self.capacity.max(other.capacity);
        self.slow_k = self.slow_k.max(other.slow_k);
        self.sampled += other.sampled;
        self.traces.extend(other.traces.iter().cloned());
        self.traces.sort_by_key(|trace| trace.id);
        self.traces.truncate(self.capacity);
        for trace in &other.slow {
            self.insert_slow(trace);
        }
    }

    /// Retained traces, sorted by query id.
    pub fn traces(&self) -> &[QueryTrace] {
        &self.traces
    }

    /// The slow-query log, worst end-to-end latency first.
    pub fn slow_queries(&self) -> &[QueryTrace] {
        &self.slow
    }

    /// Total sampled queries (including any beyond the retention capacity).
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Retained trace count.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Render this log alone as a Chrome trace (process id 0).
    pub fn to_chrome_json(&self) -> String {
        chrome_export([("trace", self)])
    }

    /// Append this log's Chrome trace events (one JSON object per line) to `events`.
    fn chrome_events(&self, pid: usize, events: &mut Vec<String>) {
        for trace in &self.traces {
            let tid = trace.id;
            events.push(format!(
                "{{\"name\":\"query {id}\",\"cat\":\"query\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"id\":{id},\"cache_hits\":{hits},\"cache_misses\":{misses},\"cache_coalesced\":{coalesced}}}}}",
                id = trace.id,
                ts = trace.start_us,
                dur = trace.latency_us(),
                hits = trace.cache_hits,
                misses = trace.cache_misses,
                coalesced = trace.cache_coalesced,
            ));
            for span in &trace.spans {
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid}}}",
                    name = span.stage.name(),
                    ts = span.begin_us,
                    dur = span.duration_us(),
                ));
            }
            for fetch in &trace.fetch {
                let node_args = match &fetch.node {
                    Some(node) => format!(
                        ",\"node_queue_wait_us\":{:.3},\"node_cache_probe_us\":{:.3},\"node_storage_read_us\":{:.3}",
                        node.queue_wait_us, node.cache_probe_us, node.storage_read_us,
                    ),
                    None => String::new(),
                };
                events.push(format!(
                    "{{\"name\":\"fetch shard {shard}\",\"cat\":\"fetch\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"shard\":{shard},\"tag\":{tag},\"hedge\":{hedge},\"completed\":{completed}{node_args}}}}}",
                    shard = fetch.shard,
                    ts = fetch.begin_us,
                    dur = (fetch.end_us - fetch.begin_us).max(0.0),
                    tag = fetch.tag,
                    hedge = fetch.hedge,
                    completed = fetch.completed,
                ));
            }
            for event in &trace.events {
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"shard\":{shard}}}}}",
                    name = event.kind.name(),
                    ts = event.at_us,
                    shard = event.shard,
                ));
            }
        }
    }

    /// Render the slow-query log as indented text (span trees per query), for the
    /// `serve_replay --slow-log` summary.
    pub fn render_slow_log(&self) -> String {
        let mut out = String::new();
        if self.slow.is_empty() {
            out.push_str("slow-query log: no sampled queries\n");
            return out;
        }
        out.push_str(&format!(
            "slow-query log (top {} of {} sampled):\n",
            self.slow.len(),
            self.sampled
        ));
        for (rank, trace) in self.slow.iter().enumerate() {
            out.push_str(&format!(
                "  {}. query {}: {:.3} us end-to-end\n",
                rank + 1,
                trace.id,
                trace.latency_us()
            ));
            for span in &trace.spans {
                out.push_str(&format!(
                    "     {:<13} {:>12.3} us\n",
                    span.stage.name(),
                    span.duration_us()
                ));
                if span.stage == Stage::CacheLookup {
                    out.push_str(&format!(
                        "       cache: {} hits, {} misses, {} coalesced\n",
                        trace.cache_hits, trace.cache_misses, trace.cache_coalesced
                    ));
                }
                if span.stage == Stage::ClusterFetch {
                    for fetch in &trace.fetch {
                        out.push_str(&format!(
                            "       shard {}: {:.3} us{}{}\n",
                            fetch.shard,
                            (fetch.end_us - fetch.begin_us).max(0.0),
                            if fetch.hedge { " (hedge)" } else { "" },
                            if fetch.completed { "" } else { " (abandoned)" },
                        ));
                        if let Some(node) = &fetch.node {
                            out.push_str(&format!(
                                "         node: queue {:.3} us, cache probe {:.3} us, storage read {:.3} us\n",
                                node.queue_wait_us, node.cache_probe_us, node.storage_read_us,
                            ));
                        }
                    }
                    for event in &trace.events {
                        out.push_str(&format!(
                            "       event: {} shard {}\n",
                            event.kind.name(),
                            event.shard
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Export one or more trace logs as a single Chrome-trace-event JSON document
/// (`{"traceEvents": [...]}`), one Chrome "process" per named section, loadable in
/// Perfetto or `chrome://tracing`.
pub fn chrome_export<'a>(sections: impl IntoIterator<Item = (&'a str, &'a TraceLog)>) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (name, log)) in sections.into_iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
        log.chrome_events(pid, &mut events);
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn trace(id: u64, start_us: f64, end_us: f64) -> QueryTrace {
        QueryTrace {
            id,
            start_us,
            end_us,
            spans: Stage::ALL
                .iter()
                .map(|&stage| Span {
                    stage,
                    begin_us: start_us,
                    end_us,
                })
                .collect(),
            cache_hits: 1,
            cache_misses: 2,
            cache_coalesced: 0,
            fetch: vec![FetchSpan {
                shard: 3,
                tag: 7,
                hedge: false,
                begin_us: start_us,
                end_us,
                completed: true,
                node: Some(NodeSpan {
                    queue_wait_us: 1.5,
                    cache_probe_us: 0.25,
                    storage_read_us: 2.0,
                }),
            }],
            events: Vec::new(),
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_id() {
        let config = TraceConfig {
            sample_every: 4,
            seed: 99,
            ..TraceConfig::default()
        };
        let first: Vec<bool> = (0..1000).map(|id| config.samples(id)).collect();
        let second: Vec<bool> = (0..1000).map(|id| config.samples(id)).collect();
        assert_eq!(first, second);
        let sampled = first.iter().filter(|&&s| s).count();
        // A hash, not a stride: roughly 1/4 of ids, not exactly every 4th.
        assert!((150..350).contains(&sampled), "sampled {sampled}");
        let disabled = TraceConfig {
            sample_every: 0,
            ..config
        };
        assert!(!disabled.enabled());
        assert!((0..1000).all(|id| !disabled.samples(id)));
    }

    #[test]
    fn merged_worker_logs_equal_the_single_worker_log() {
        // Simulate 4 workers each seeing an interleaved, increasing id subsequence.
        let ids: Vec<u64> = (0..100).collect();
        let mut single = TraceLog::new(16, 4);
        for &id in &ids {
            single.push(trace(id, id as f64, id as f64 + 10.0));
        }
        let mut workers: Vec<TraceLog> = (0..4).map(|_| TraceLog::new(16, 4)).collect();
        for &id in &ids {
            workers[(id % 4) as usize].push(trace(id, id as f64, id as f64 + 10.0));
        }
        let mut merged = TraceLog::new(16, 4);
        for worker in &workers {
            merged.merge(worker);
        }
        assert_eq!(merged, single);
        assert_eq!(merged.len(), 16);
        assert_eq!(merged.sampled(), 100);
        assert_eq!(
            merged.traces().iter().map(|t| t.id).collect::<Vec<_>>(),
            (0..16).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn slow_log_keeps_the_worst_latencies_worst_first() {
        let mut log = TraceLog::new(100, 3);
        for (id, latency) in [(0u64, 5.0), (1, 50.0), (2, 1.0), (3, 50.0), (4, 20.0)] {
            log.push(trace(id, 0.0, latency));
        }
        let slow: Vec<(u64, f64)> = log
            .slow_queries()
            .iter()
            .map(|t| (t.id, t.latency_us()))
            .collect();
        // Ties (ids 1 and 3 at 50us) break toward the lower id.
        assert_eq!(slow, vec![(1, 50.0), (3, 50.0), (4, 20.0)]);
        let rendered = log.render_slow_log();
        assert!(rendered.contains("slow-query log (top 3 of 5 sampled):"));
        assert!(rendered.contains("query 1: 50.000 us end-to-end"));
        assert!(rendered.contains("cluster_fetch"));
        assert!(rendered.contains("shard 3:"));
    }

    #[test]
    fn chrome_export_is_balanced_and_loadable_shaped() {
        let mut log = TraceLog::new(8, 2);
        let mut with_fault = trace(5, 0.0, 100.0);
        with_fault.events.push(FetchEvent {
            kind: FetchEventKind::Timeout,
            shard: 1,
            tag: 7,
            at_us: 50.0,
        });
        log.push(with_fault);
        let json = chrome_export([("section \"a\"\n", &log)]);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("section \"a\"\n\""), "name must be escaped");
        assert!(json.contains("\\\"a\\\"\\n"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"query 5\""));
        assert!(json.contains("\"name\":\"cluster_fetch\""));
        assert!(json.contains("\"name\":\"timeout\""));
        assert!(json.contains("\"tid\":5"));
    }

    #[test]
    fn finalize_rebases_measured_marks_onto_the_virtual_timeline() {
        let mut tracer = Tracer::new(TraceConfig {
            sample_every: 1,
            seed: 0,
            capacity: 8,
            slow_k: 2,
        });
        tracer.set_clock(Arc::new(ManualClock::new()));
        // Measured marks with a wall-clock-like origin of 1000us.
        tracer.stash(BatchScratch {
            pool_begin_us: 1000.0,
            pool_end_us: 1030.0,
            filter_end_us: 1040.0,
            rank_end_us: 1055.0,
            fetch_begin_us: 1010.0,
            fetch_end_us: 1025.0,
            hits: 4,
            misses: 2,
            coalesced: 1,
            events: vec![
                FetchEvent {
                    kind: FetchEventKind::Dispatch,
                    shard: 0,
                    tag: 11,
                    at_us: 1010.0,
                },
                FetchEvent {
                    kind: FetchEventKind::Reply,
                    shard: 0,
                    tag: 11,
                    at_us: 1020.0,
                },
            ],
            node_spans: vec![NodeSpanRecord {
                shard: 0,
                tag: 11,
                span: NodeSpan {
                    queue_wait_us: 3.0,
                    cache_probe_us: 0.5,
                    storage_read_us: 4.0,
                },
            }],
        });
        let mut stages = StageBreakdown::default();
        // Virtual timeline: arrival 40, trigger 50, service start 60, completion 120.
        tracer.finalize_batch(&[(7, 40.0)], 50.0, Some(60.0), 120.0, &mut stages);
        let log = tracer.take_log();
        assert_eq!(log.len(), 1);
        let trace = &log.traces()[0];
        assert_eq!(trace.id, 7);
        assert_eq!(trace.latency_us(), 80.0);
        let pool = trace.span(Stage::CacheLookup).unwrap();
        assert_eq!(pool.begin_us, 60.0, "pooling re-anchors to service start");
        let fetch = trace.span(Stage::ClusterFetch).unwrap();
        assert_eq!((fetch.begin_us, fetch.end_us), (70.0, 85.0));
        let rank = trace.span(Stage::MlpRank).unwrap();
        assert_eq!((rank.begin_us, rank.end_us), (100.0, 115.0));
        assert!(rank.end_us <= trace.end_us, "stages nest inside e2e");
        assert_eq!(trace.fetch.len(), 1);
        assert_eq!(
            (trace.fetch[0].begin_us, trace.fetch[0].end_us),
            (70.0, 80.0),
            "sub-request spans shift with the batch"
        );
        assert!(trace.fetch[0].completed);
        assert_eq!(
            trace.fetch[0].tag, 1,
            "tags renumber from the global counter"
        );
        let node = trace.fetch[0].node.expect("the reply carried a node span");
        assert_eq!(node.queue_wait_us, 3.0);
        assert_eq!(node.cache_probe_us, 0.5);
        assert_eq!(node.storage_read_us, 4.0);
        assert_eq!(stages.sampled, 1);
        assert_eq!(stages.cluster_fetch.count(), 1);
    }

    #[test]
    fn abandoned_attempts_close_at_the_fetch_window_end() {
        let events = vec![
            FetchEvent {
                kind: FetchEventKind::Dispatch,
                shard: 0,
                tag: 1,
                at_us: 10.0,
            },
            FetchEvent {
                kind: FetchEventKind::Hedge,
                shard: 2,
                tag: 2,
                at_us: 15.0,
            },
            FetchEvent {
                kind: FetchEventKind::Reply,
                shard: 2,
                tag: 2,
                at_us: 20.0,
            },
        ];
        let node_spans = vec![NodeSpanRecord {
            shard: 2,
            tag: 2,
            span: NodeSpan {
                queue_wait_us: 1.0,
                cache_probe_us: 0.0,
                storage_read_us: 2.0,
            },
        }];
        let spans = assemble_fetch_spans(&events, &node_spans, 0.0, 30.0);
        assert_eq!(spans.len(), 2);
        assert!(!spans[0].completed, "no reply: abandoned");
        assert_eq!(spans[0].end_us, 30.0);
        assert!(
            spans[0].node.is_none(),
            "abandoned attempts carry no node span"
        );
        assert!(spans[1].hedge);
        assert!(spans[1].completed);
        assert_eq!(spans[1].end_us, 20.0);
        assert_eq!(
            spans[1].node,
            Some(NodeSpan {
                queue_wait_us: 1.0,
                cache_probe_us: 0.0,
                storage_read_us: 2.0,
            }),
            "the hedge winner's reply attaches its node span"
        );
    }
}
