//! Serving telemetry: latency histogram, throughput, cache and cost accounting.
//!
//! A serving engine is judged by its tail, not its mean, so latencies go into a
//! log-bucketed histogram (constant relative resolution, like HDR histograms) from which
//! p50/p95/p99 are read. The report also carries the cache counters, the modeled GPCiM
//! cost per query (energy/latency from [`imars_fabric::cost`]), and a hand-rolled JSON
//! serialization in the same style as the bench harness so replay runs land next to the
//! bench suites under `target/imars-bench/`.

use std::fmt::Write as _;

use imars_fabric::cost::{Cost, CostBreakdown};

use crate::batcher::BatchPolicy;
use crate::cache::CacheStats;

/// Smallest distinguishable latency (one bucket below this records as this).
const BASE_US: f64 = 0.01;
/// Buckets per octave: relative resolution of 2^(1/8) ≈ 9 %.
const BUCKETS_PER_OCTAVE: f64 = 8.0;
/// Total buckets: 64 octaves above `BASE_US` ≈ 10 ns .. 2×10⁵ s.
const BUCKETS: usize = 512;

/// A log-bucketed latency histogram with exact min/max/mean tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    /// The bucket index a value lands in — public so the metrics plane's
    /// exemplar harvest ([`crate::metrics::StageExemplars`]) can key exemplars
    /// by the exact bucket the exposition dump renders.
    pub fn bucket_of(latency_us: f64) -> usize {
        // NaN would fall through a plain `<= BASE_US` comparison into the log-domain
        // math; route it to bucket 0 alongside negatives, zero and sub-base values.
        if latency_us.is_nan() || latency_us <= BASE_US {
            return 0;
        }
        let index = ((latency_us / BASE_US).log2() * BUCKETS_PER_OCTAVE).floor();
        // Clamp in f64 before the cast: huge observations (up to f64::MAX or +inf)
        // produce an index far beyond the table and must land in the last bucket, not
        // depend on float-to-int cast semantics.
        if index >= (BUCKETS - 1) as f64 {
            BUCKETS - 1
        } else {
            index as usize
        }
    }

    /// Upper edge of a bucket in microseconds.
    pub fn bucket_upper_us(index: usize) -> f64 {
        BASE_US * ((index + 1) as f64 / BUCKETS_PER_OCTAVE).exp2()
    }

    /// Record one latency observation (non-finite or negative values clamp to zero).
    pub fn record(&mut self, latency_us: f64) {
        let latency_us = if latency_us.is_finite() {
            latency_us.max(0.0)
        } else {
            0.0
        };
        self.buckets[Self::bucket_of(latency_us)] += 1;
        self.count += 1;
        self.sum_us += latency_us;
        self.min_us = self.min_us.min(latency_us);
        self.max_us = self.max_us.max(latency_us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us
        }
    }

    /// Largest observation (0 when empty).
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Fold another histogram into this one (bucket-wise; min/max/mean stay exact).
    /// The threaded runtime merges per-worker histograms into the run's report with
    /// this.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (acc, &count) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *acc += count;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The non-empty buckets as `(bucket_index, upper_edge_us, count)` triples —
    /// the Prometheus exposition renders cumulative `le` buckets from these and
    /// attaches per-bucket exemplars by index.
    pub fn indexed_buckets(&self) -> Vec<(usize, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (index, Self::bucket_upper_us(index), count))
            .collect()
    }

    /// The non-empty buckets as `(upper_edge_us, count)` pairs — the full distribution,
    /// exported in the report JSON so offline tooling can recompute any quantile.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (Self::bucket_upper_us(index), count))
            .collect()
    }

    /// The non-empty buckets as a JSON array of `[upper_edge_us, count]` pairs.
    fn buckets_json(&self) -> String {
        let pairs: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(|(upper_us, count)| format!("[{upper_us:.6}, {count}]"))
            .collect();
        format!("[{}]", pairs.join(", "))
    }

    /// The latency at quantile `q` in `[0, 1]`: the upper edge of the first bucket whose
    /// cumulative count reaches `q * count`, clamped to the observed min/max (so the
    /// answer is never below the true minimum or above the true maximum). Returns 0 for
    /// an empty histogram.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return Self::bucket_upper_us(index).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }
}

/// Per-stage latency histograms over the *sampled* (traced) queries: where the time of
/// a query actually went. Each sampled query records exactly one observation into every
/// stage histogram and one end-to-end observation into `total`, so all counts agree and
/// tail attribution ("p99 is 72% cluster_fetch") is well-defined.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    /// Queries sampled into the breakdown (equals every stage histogram's count).
    pub sampled: u64,
    /// Arrival/submission until the query's batch flushed.
    pub batch_form: LatencyHistogram,
    /// Flush until a worker started the batch.
    pub queue_wait: LatencyHistogram,
    /// Cache probe phase of pooling.
    pub cache_lookup: LatencyHistogram,
    /// The shard fetch window.
    pub cluster_fetch: LatencyHistogram,
    /// LSH + TCAM candidate filtering.
    pub nns_filter: LatencyHistogram,
    /// MLP ranking.
    pub mlp_rank: LatencyHistogram,
    /// End-to-end latency of the sampled queries (stage durations nest under this).
    pub total: LatencyHistogram,
}

impl StageBreakdown {
    /// Record one finalized trace: every stage span's duration plus the end-to-end
    /// latency.
    pub fn record(&mut self, trace: &crate::trace::QueryTrace) {
        use crate::trace::Stage;
        self.sampled += 1;
        for span in &trace.spans {
            let histogram = match span.stage {
                Stage::BatchForm => &mut self.batch_form,
                Stage::QueueWait => &mut self.queue_wait,
                Stage::CacheLookup => &mut self.cache_lookup,
                Stage::ClusterFetch => &mut self.cluster_fetch,
                Stage::NnsFilter => &mut self.nns_filter,
                Stage::MlpRank => &mut self.mlp_rank,
            };
            histogram.record(span.duration_us());
        }
        self.total.record(trace.latency_us());
    }

    /// The six stage histograms with their stable names, in pipeline order.
    pub fn stages(&self) -> [(&'static str, &LatencyHistogram); 6] {
        [
            ("batch_form", &self.batch_form),
            ("queue_wait", &self.queue_wait),
            ("cache_lookup", &self.cache_lookup),
            ("cluster_fetch", &self.cluster_fetch),
            ("nns_filter", &self.nns_filter),
            ("mlp_rank", &self.mlp_rank),
        ]
    }

    /// The stage with the largest p99 and its share of the end-to-end p99 — the
    /// headline "p99 is NN% \<stage\>" attribution. `None` while nothing was sampled or
    /// the end-to-end p99 is zero (frozen-clock runs).
    pub fn tail_attribution(&self) -> Option<(&'static str, f64)> {
        let total_p99 = self.total.quantile_us(0.99);
        if total_p99 <= 0.0 {
            return None;
        }
        self.stages()
            .iter()
            .map(|(name, histogram)| (*name, histogram.quantile_us(0.99)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(name, p99)| (name, (p99 / total_p99).clamp(0.0, 1.0)))
    }

    /// Fold another breakdown into this one (histogram-wise; the threaded runtime
    /// merges one per worker).
    pub fn merge(&mut self, other: &StageBreakdown) {
        self.sampled += other.sampled;
        self.batch_form.merge(&other.batch_form);
        self.queue_wait.merge(&other.queue_wait);
        self.cache_lookup.merge(&other.cache_lookup);
        self.cluster_fetch.merge(&other.cluster_fetch);
        self.nns_filter.merge(&other.nns_filter);
        self.mlp_rank.merge(&other.mlp_rank);
        self.total.merge(&other.total);
    }
}

/// Counters accumulated while serving (one replay run or an engine lifetime).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeTelemetry {
    /// Per-request end-to-end latency (queue wait + service).
    pub latency: LatencyHistogram,
    /// Queries served.
    pub queries: u64,
    /// Batches executed.
    pub batches: u64,
    /// Sum of batch sizes (mean batch size = `batch_size_sum / batches`).
    pub batch_size_sum: u64,
    /// Sum of per-query candidate counts from the filtering stage.
    pub candidates_sum: u64,
    /// Total measured service time, microseconds (engine busy time).
    pub busy_us: f64,
    /// Virtual completion time of the last batch, microseconds.
    pub makespan_us: f64,
    /// Modeled hardware cost accumulated across all queries.
    pub cost: CostBreakdown,
    /// Aggregate of `cost` (serial composition).
    pub total_cost: Cost,
    /// Queries answered with at least one zero-filled (missing) row in their pooled
    /// history — served, but degraded.
    pub degraded_queries: u64,
    /// Row lookups zero-filled because no healthy shard held the row.
    pub missing_row_lookups: u64,
    /// Per-stage latency attribution over the traced queries (empty unless tracing is
    /// enabled on the engine).
    pub stages: StageBreakdown,
}

impl ServeTelemetry {
    /// Queries per second over the virtual makespan (arrival pacing included).
    /// An empty replay or a frozen-clock run has a zero (or degenerate)
    /// makespan; the finite check runs first so a NaN makespan reports 0
    /// instead of putting NaN into the report JSON.
    pub fn served_qps(&self) -> f64 {
        if !self.makespan_us.is_finite() || self.makespan_us <= 0.0 {
            0.0
        } else {
            self.queries as f64 / self.makespan_us * 1e6
        }
    }

    /// Queries per second over engine busy time only (peak service rate).
    /// NaN-proof like [`ServeTelemetry::served_qps`].
    pub fn service_qps(&self) -> f64 {
        if !self.busy_us.is_finite() || self.busy_us <= 0.0 {
            0.0
        } else {
            self.queries as f64 / self.busy_us * 1e6
        }
    }

    /// Mean batch size (0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_size_sum as f64 / self.batches as f64
        }
    }

    /// Mean candidates surfaced per query by the filtering stage.
    pub fn mean_candidates(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.candidates_sum as f64 / self.queries as f64
        }
    }

    /// Modeled energy per query in picojoules.
    pub fn energy_pj_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_cost.energy_pj / self.queries as f64
        }
    }

    /// Modeled queries per second: queries over the accumulated modeled GPCiM +
    /// interconnect latency. Unlike [`ServeTelemetry::served_qps`] (which folds in
    /// *measured* service time), this is a pure function of the replayed trace and the
    /// cost model — byte-deterministic across runs, which is what the `cache_scaling`
    /// study's qps-vs-capacity curves require.
    /// Zero-duration guard: an empty replay accumulates no modeled latency, and
    /// the finite check keeps a NaN cost from leaking NaN into the JSON.
    pub fn modeled_qps(&self) -> f64 {
        if self.queries == 0
            || !self.total_cost.latency_ns.is_finite()
            || self.total_cost.latency_ns <= 0.0
        {
            0.0
        } else {
            self.queries as f64 / (self.total_cost.latency_ns * 1e-9)
        }
    }

    /// Fold another telemetry block into this one: histograms merge, counters and busy
    /// time add, the makespan takes the later completion, costs accumulate. The threaded
    /// runtime merges one block per worker into the run's report with this.
    pub fn merge(&mut self, other: &ServeTelemetry) {
        self.latency.merge(&other.latency);
        self.queries += other.queries;
        self.batches += other.batches;
        self.batch_size_sum += other.batch_size_sum;
        self.candidates_sum += other.candidates_sum;
        self.busy_us += other.busy_us;
        self.makespan_us = self.makespan_us.max(other.makespan_us);
        self.cost.merge(&other.cost);
        self.total_cost += other.total_cost;
        self.degraded_queries += other.degraded_queries;
        self.missing_row_lookups += other.missing_row_lookups;
        self.stages.merge(&other.stages);
    }
}

/// Counters specific to the threaded runtime: queueing, backpressure and worker
/// utilization. Everything here is *measured* on real threads — unlike the modeled
/// GPCiM cost next to it in the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Bound of the request queue.
    pub queue_capacity: usize,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected because the queue was full (load shedding).
    pub rejected: u64,
    /// Times the batcher thread stalled pushing a flushed batch to a full batch queue.
    pub batcher_stalls: u64,
    /// Total time the batcher thread spent stalled, microseconds.
    pub batcher_stall_us: f64,
    /// Deepest request-queue depth observed at a submit.
    pub queue_depth_max: u64,
    /// Sum of request-queue depths sampled at each accepted submit.
    pub queue_depth_sum: u64,
    /// Number of depth samples (= accepted submits).
    pub queue_depth_samples: u64,
    /// Measured busy time per worker, microseconds.
    pub worker_busy_us: Vec<f64>,
    /// Wall-clock span from runtime start to the last batch completion, microseconds.
    pub wall_us: f64,
}

impl RuntimeStats {
    /// Mean request-queue depth over the submit samples (0 when nothing was accepted).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Fraction of offered requests rejected by backpressure.
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.submitted + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }

    /// Mean worker utilization: total busy time over `workers × wall span`.
    /// NaN-proof: a zero-duration (or NaN) wall span reports 0, not NaN.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || !self.wall_us.is_finite() || self.wall_us <= 0.0 {
            0.0
        } else {
            let busy: f64 = self.worker_busy_us.iter().sum();
            (busy / (self.workers as f64 * self.wall_us)).min(1.0)
        }
    }
}

/// Counters of the multi-node shard cluster: routed traffic, cross-shard bytes, and
/// per-shard load/queue pressure. Placement quality shows up here — frequency-aware
/// placement should cut `cross_shard_bytes` on skewed traffic, at the price the
/// imbalance figure makes visible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStats {
    /// Shard nodes in the cluster.
    pub shards: usize,
    /// Worker threads per shard node.
    pub workers_per_shard: usize,
    /// Placement policy label ("range" / "freq").
    pub placement: String,
    /// Hottest rows replicated onto every shard.
    pub hot_replicas: usize,
    /// Capacity of each shard's bounded sub-request queue.
    pub queue_capacity: usize,
    /// Routed fetches (one per batch of lookups reaching the cluster).
    pub fetches: u64,
    /// Sub-requests issued across all fetches (fan-out width sum).
    pub subrequests: u64,
    /// Sub-requests that left the batch's home shard.
    pub cross_shard_hops: u64,
    /// Row payload bytes served from non-home shards over the RSC bus (the modeled
    /// bus charge additionally covers the sub-request index bytes).
    pub cross_shard_bytes: u64,
    /// Row payload bytes served on the home shard (no bus charge).
    pub local_bytes: u64,
    /// Rows served per shard (the skew-induced load-balance signal).
    pub shard_lookups: Vec<u64>,
    /// Queue-overflow rejections per shard (counted before the blocking fallback).
    pub shard_rejections: Vec<u64>,
    /// Deepest observed sub-request queue depth per shard.
    pub shard_queue_depth_max: Vec<u64>,
    /// Node-cache hits per shard (all zero when per-shard-node caching is off).
    pub shard_cache_hits: Vec<u64>,
    /// Node-cache misses per shard — rows the node actually read from its resident
    /// storage (the CMA RAM reads the modeled cost charges).
    pub shard_cache_misses: Vec<u64>,
    /// Sub-request attempts that blew their deadline (resilient path only).
    pub timeouts: u64,
    /// Re-dispatches of timed-out or failed sub-requests.
    pub retries: u64,
    /// Speculative duplicate dispatches against a slow primary.
    pub hedges: u64,
    /// Hedged dispatches whose response beat the primary's.
    pub hedge_wins: u64,
    /// Sub-requests served by a replica-holding shard other than their owner.
    pub promotions: u64,
    /// Row lookups degraded to zero-filled results (no healthy shard held the row).
    pub missing_rows: u64,
}

impl ClusterStats {
    /// Mean shards touched per routed fetch (0 when nothing was routed).
    pub fn mean_fanout(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.subrequests as f64 / self.fetches as f64
        }
    }

    /// Load imbalance: the busiest shard's lookups over the per-shard mean (1.0 is
    /// perfectly balanced; 0 when no lookups were served).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.shard_lookups.iter().sum();
        if total == 0 || self.shard_lookups.is_empty() {
            return 0.0;
        }
        let max = *self.shard_lookups.iter().max().expect("nonempty") as f64;
        max / (total as f64 / self.shard_lookups.len() as f64)
    }

    /// Fraction of served bytes that crossed shards.
    pub fn cross_traffic_fraction(&self) -> f64 {
        let total = self.cross_shard_bytes + self.local_bytes;
        if total == 0 {
            0.0
        } else {
            self.cross_shard_bytes as f64 / total as f64
        }
    }

    /// Total queue-overflow rejections across shards.
    pub fn total_rejections(&self) -> u64 {
        self.shard_rejections.iter().sum()
    }

    /// Whether the resilient path ever intervened (timed out, retried, hedged,
    /// promoted or degraded anything).
    pub fn any_faults_handled(&self) -> bool {
        self.timeouts + self.retries + self.hedges + self.promotions + self.missing_rows > 0
    }

    /// Whether any shard node served lookups through its own cache.
    pub fn node_cached(&self) -> bool {
        self.shard_cache_hits.iter().sum::<u64>() + self.shard_cache_misses.iter().sum::<u64>() > 0
    }
}

/// The summary of one replay run, ready for printing and JSON serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// A label for the run ("serve_replay", bench section names, ...).
    pub name: String,
    /// The batching policy the run used.
    pub policy: BatchPolicy,
    /// Shards in the embedding layer.
    pub shards: usize,
    /// Hot-row cache capacity in rows (0 = disabled).
    pub cache_capacity: usize,
    /// Replacement-policy label (`"clock"`, `"lfu"` or `"tinylfu"`).
    pub cache_policy: String,
    /// Cache-placement label (`"router"` or `"shard"`).
    pub cache_placement: String,
    /// Serving counters.
    pub telemetry: ServeTelemetry,
    /// Cache counters at the end of the run.
    pub cache: CacheStats,
    /// Threaded-runtime counters; `None` for the discrete-event replay path, where
    /// latency is simulated rather than measured and there is no queue to backpressure.
    pub runtime: Option<RuntimeStats>,
    /// Shard-cluster counters; `None` when the engine serves from the in-process table.
    pub cluster: Option<ClusterStats>,
    /// The scraped time series from the metrics plane; `None` unless metrics
    /// were enabled on the engine ([`crate::engine::ServeEngine::enable_metrics`]).
    pub metrics: Option<crate::metrics::MetricsSeries>,
}

impl ServeReport {
    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let t = &self.telemetry;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}: {} queries in {} batches (mean batch {:.1}, policy max_batch={} max_wait={:.0}us)",
            self.name,
            t.queries,
            t.batches,
            t.mean_batch_size(),
            self.policy.max_batch,
            self.policy.max_wait_us,
        );
        let _ = writeln!(
            s,
            "  latency p50 {:.1}us  p95 {:.1}us  p99 {:.1}us  mean {:.1}us  max {:.1}us",
            t.latency.quantile_us(0.50),
            t.latency.quantile_us(0.95),
            t.latency.quantile_us(0.99),
            t.latency.mean_us(),
            t.latency.max_us(),
        );
        let _ = writeln!(
            s,
            "  throughput {:.0} qps served ({:.0} qps at full load), {} shards",
            t.served_qps(),
            t.service_qps(),
            self.shards,
        );
        let _ = writeln!(
            s,
            "  cache: capacity {} rows ({} at {}), hit rate {:.1}% ({} hits / {} lookups, {} evictions, {} rejected)",
            self.cache_capacity,
            self.cache_policy,
            self.cache_placement,
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.lookups(),
            self.cache.evictions,
            self.cache.rejections,
        );
        let _ = writeln!(
            s,
            "  modeled GPCiM cost: {:.1} pJ/query ({:.1} candidates/query from the TCAM filter)",
            t.energy_pj_per_query(),
            t.mean_candidates(),
        );
        if let Some(cluster) = &self.cluster {
            let _ = writeln!(
                s,
                "  cluster: {} shard nodes x {} workers ({} placement, {} hot replicas), fan-out {:.2} shards/fetch",
                cluster.shards,
                cluster.workers_per_shard,
                cluster.placement,
                cluster.hot_replicas,
                cluster.mean_fanout(),
            );
            let _ = writeln!(
                s,
                "  interconnect: {} cross-shard hops, {:.2} MB crossed ({:.1}% of served bytes), imbalance {:.2}x, {} queue rejections",
                cluster.cross_shard_hops,
                cluster.cross_shard_bytes as f64 / 1e6,
                cluster.cross_traffic_fraction() * 100.0,
                cluster.imbalance(),
                cluster.total_rejections(),
            );
            if cluster.node_cached() {
                let hits: u64 = cluster.shard_cache_hits.iter().sum();
                let misses: u64 = cluster.shard_cache_misses.iter().sum();
                let _ = writeln!(
                    s,
                    "  node caches: {:.1}% hit rate at the shards ({} hits / {} lookups)",
                    100.0 * hits as f64 / (hits + misses).max(1) as f64,
                    hits,
                    hits + misses,
                );
            }
            if cluster.any_faults_handled() {
                let _ = writeln!(
                    s,
                    "  fault tolerance: {} timeouts, {} retries, {} hedges ({} won), {} promotions, {} rows zero-filled",
                    cluster.timeouts,
                    cluster.retries,
                    cluster.hedges,
                    cluster.hedge_wins,
                    cluster.promotions,
                    cluster.missing_rows,
                );
            }
        }
        if t.degraded_queries > 0 || t.missing_row_lookups > 0 {
            let _ = writeln!(
                s,
                "  degraded: {} queries served with {} missing-row lookups zero-filled",
                t.degraded_queries, t.missing_row_lookups,
            );
        }
        if let Some(runtime) = &self.runtime {
            let _ = writeln!(
                s,
                "  runtime: {} workers, queue {} deep (max {} / mean {:.1} observed), {:.1}% utilization",
                runtime.workers,
                runtime.queue_capacity,
                runtime.queue_depth_max,
                runtime.mean_queue_depth(),
                runtime.utilization() * 100.0,
            );
            let _ = writeln!(
                s,
                "  backpressure: {} accepted, {} rejected ({:.1}%), {} batcher stalls ({:.0}us stalled)",
                runtime.submitted,
                runtime.rejected,
                runtime.rejection_rate() * 100.0,
                runtime.batcher_stalls,
                runtime.batcher_stall_us,
            );
        }
        if let Some(metrics) = &self.metrics {
            let peak = metrics.peak_qps();
            let _ = writeln!(
                s,
                "  metrics: {} windows of {:.0}us{}",
                metrics.windows.len(),
                metrics.interval_us,
                match peak {
                    Some((index, qps)) if qps > 0.0 =>
                        format!(", peak {qps:.0} qps in window {index}"),
                    _ => String::new(),
                },
            );
        }
        if t.stages.sampled > 0 {
            let _ = write!(
                s,
                "  stage breakdown ({} queries sampled, e2e p50 {:.1}us p99 {:.1}us)",
                t.stages.sampled,
                t.stages.total.quantile_us(0.50),
                t.stages.total.quantile_us(0.99),
            );
            match t.stages.tail_attribution() {
                Some((stage, share)) => {
                    let _ = writeln!(s, ": p99 is {:.0}% {stage}", share * 100.0);
                }
                None => {
                    let _ = writeln!(s);
                }
            }
            for (name, histogram) in t.stages.stages() {
                let _ = writeln!(
                    s,
                    "    {name:<13} p50 {:>9.1}us  p99 {:>9.1}us  mean {:>9.1}us",
                    histogram.quantile_us(0.50),
                    histogram.quantile_us(0.99),
                    histogram.mean_us(),
                );
            }
        }
        s
    }

    /// JSON summary in the bench-harness style (hand-rolled: the vendored serde has no
    /// serializer backend).
    pub fn to_json(&self) -> String {
        let t = &self.telemetry;
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"suite\": \"{}\",", escape(&self.name));
        let _ = writeln!(
            json,
            "  \"policy\": {{\"max_batch\": {}, \"max_wait_us\": {:.3}}},",
            self.policy.max_batch, self.policy.max_wait_us
        );
        let _ = writeln!(json, "  \"shards\": {},", self.shards);
        let _ = writeln!(json, "  \"queries\": {},", t.queries);
        let _ = writeln!(json, "  \"batches\": {},", t.batches);
        let _ = writeln!(json, "  \"mean_batch_size\": {:.3},", t.mean_batch_size());
        let _ = writeln!(
            json,
            "  \"latency_us\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}, \"min\": {:.3}, \"max\": {:.3}, \"buckets\": {}}},",
            t.latency.quantile_us(0.50),
            t.latency.quantile_us(0.95),
            t.latency.quantile_us(0.99),
            t.latency.mean_us(),
            t.latency.min_us(),
            t.latency.max_us(),
            t.latency.buckets_json(),
        );
        let _ = writeln!(
            json,
            "  \"throughput\": {{\"served_qps\": {:.3}, \"service_qps\": {:.3}}},",
            t.served_qps(),
            t.service_qps()
        );
        let _ = writeln!(
            json,
            "  \"cache\": {{\"capacity\": {}, \"policy\": \"{}\", \"placement\": \"{}\", \"hits\": {}, \"coalesced\": {}, \"misses\": {}, \"hit_rate\": {:.6}, \"insertions\": {}, \"evictions\": {}, \"rejections\": {}}},",
            self.cache_capacity,
            escape(&self.cache_policy),
            escape(&self.cache_placement),
            self.cache.hits,
            self.cache.coalesced,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.insertions,
            self.cache.evictions,
            self.cache.rejections,
        );
        let _ = writeln!(
            json,
            "  \"candidates_per_query\": {:.3},",
            t.mean_candidates()
        );
        let _ = writeln!(
            json,
            "  \"degraded\": {{\"queries\": {}, \"missing_row_lookups\": {}}},",
            t.degraded_queries, t.missing_row_lookups,
        );
        if t.stages.sampled > 0 {
            let histogram_json = |histogram: &LatencyHistogram| {
                format!(
                    "{{\"count\": {}, \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}, \"buckets\": {}}}",
                    histogram.count(),
                    histogram.quantile_us(0.50),
                    histogram.quantile_us(0.95),
                    histogram.quantile_us(0.99),
                    histogram.mean_us(),
                    histogram.buckets_json(),
                )
            };
            let _ = writeln!(json, "  \"stage_breakdown\": {{");
            let _ = writeln!(json, "    \"sampled\": {},", t.stages.sampled);
            if let Some((stage, share)) = t.stages.tail_attribution() {
                let _ = writeln!(
                    json,
                    "    \"tail_attribution\": {{\"stage\": \"{stage}\", \"p99_share\": {share:.6}}},",
                );
            }
            let _ = writeln!(json, "    \"stages\": {{");
            for (i, (name, histogram)) in t.stages.stages().iter().enumerate() {
                let _ = writeln!(
                    json,
                    "      \"{name}\": {}{}",
                    histogram_json(histogram),
                    if i + 1 < t.stages.stages().len() {
                        ","
                    } else {
                        ""
                    },
                );
            }
            let _ = writeln!(json, "    }},");
            let _ = writeln!(json, "    \"total\": {}", histogram_json(&t.stages.total));
            let _ = writeln!(json, "  }},");
        }
        if let Some(cluster) = &self.cluster {
            let list = |values: &[u64]| -> String {
                let items: Vec<String> = values.iter().map(u64::to_string).collect();
                format!("[{}]", items.join(", "))
            };
            let _ = writeln!(json, "  \"cluster\": {{");
            let _ = writeln!(json, "    \"shards\": {},", cluster.shards);
            let _ = writeln!(
                json,
                "    \"workers_per_shard\": {},",
                cluster.workers_per_shard
            );
            let _ = writeln!(
                json,
                "    \"placement\": \"{}\",",
                escape(&cluster.placement)
            );
            let _ = writeln!(json, "    \"hot_replicas\": {},", cluster.hot_replicas);
            let _ = writeln!(json, "    \"queue_capacity\": {},", cluster.queue_capacity);
            let _ = writeln!(json, "    \"fetches\": {},", cluster.fetches);
            let _ = writeln!(json, "    \"mean_fanout\": {:.3},", cluster.mean_fanout());
            let _ = writeln!(
                json,
                "    \"cross_shard_hops\": {},",
                cluster.cross_shard_hops
            );
            let _ = writeln!(
                json,
                "    \"cross_shard_bytes\": {},",
                cluster.cross_shard_bytes
            );
            let _ = writeln!(json, "    \"local_bytes\": {},", cluster.local_bytes);
            let _ = writeln!(
                json,
                "    \"cross_traffic_fraction\": {:.6},",
                cluster.cross_traffic_fraction()
            );
            let _ = writeln!(json, "    \"imbalance\": {:.3},", cluster.imbalance());
            let _ = writeln!(
                json,
                "    \"shard_lookups\": {},",
                list(&cluster.shard_lookups)
            );
            let _ = writeln!(
                json,
                "    \"shard_rejections\": {},",
                list(&cluster.shard_rejections)
            );
            let _ = writeln!(
                json,
                "    \"shard_queue_depth_max\": {},",
                list(&cluster.shard_queue_depth_max)
            );
            let _ = writeln!(
                json,
                "    \"shard_cache_hits\": {},",
                list(&cluster.shard_cache_hits)
            );
            let _ = writeln!(
                json,
                "    \"shard_cache_misses\": {},",
                list(&cluster.shard_cache_misses)
            );
            let _ = writeln!(
                json,
                "    \"fault_tolerance\": {{\"timeouts\": {}, \"retries\": {}, \"hedges\": {}, \"hedge_wins\": {}, \"promotions\": {}, \"missing_rows\": {}}}",
                cluster.timeouts,
                cluster.retries,
                cluster.hedges,
                cluster.hedge_wins,
                cluster.promotions,
                cluster.missing_rows,
            );
            let _ = writeln!(json, "  }},");
        }
        if let Some(runtime) = &self.runtime {
            let _ = writeln!(json, "  \"runtime\": {{");
            let _ = writeln!(json, "    \"workers\": {},", runtime.workers);
            let _ = writeln!(json, "    \"queue_capacity\": {},", runtime.queue_capacity);
            let _ = writeln!(json, "    \"submitted\": {},", runtime.submitted);
            let _ = writeln!(json, "    \"rejected\": {},", runtime.rejected);
            let _ = writeln!(
                json,
                "    \"rejection_rate\": {:.6},",
                runtime.rejection_rate()
            );
            let _ = writeln!(json, "    \"batcher_stalls\": {},", runtime.batcher_stalls);
            let _ = writeln!(
                json,
                "    \"batcher_stall_us\": {:.3},",
                runtime.batcher_stall_us
            );
            let _ = writeln!(
                json,
                "    \"queue_depth\": {{\"max\": {}, \"mean\": {:.3}}},",
                runtime.queue_depth_max,
                runtime.mean_queue_depth()
            );
            let _ = writeln!(json, "    \"utilization\": {:.6},", runtime.utilization());
            let _ = writeln!(json, "    \"wall_us\": {:.3}", runtime.wall_us);
            let _ = writeln!(json, "  }},");
        }
        if let Some(metrics) = &self.metrics {
            let _ = writeln!(json, "  \"metrics\": {},", metrics.json_with_indent(2));
        }
        let _ = writeln!(
            json,
            "  \"modeled_cost\": {{\"energy_pj_per_query\": {:.3}, \"total_energy_pj\": {:.3}, \"total_latency_ns\": {:.3}, \"components\": [",
            t.energy_pj_per_query(),
            t.total_cost.energy_pj,
            t.total_cost.latency_ns,
        );
        for (i, (component, cost)) in t.cost.iter().enumerate() {
            let _ = write!(
                json,
                "{}    {{\"component\": \"{:?}\", \"energy_pj\": {:.3}, \"latency_ns\": {:.3}}}",
                if i == 0 { "" } else { ",\n" },
                component,
                cost.energy_pj,
                cost.latency_ns,
            );
        }
        let _ = writeln!(json, "\n  ]}}");
        json.push_str("}\n");
        json
    }

    /// Write the JSON summary to `target/imars-bench/<name>.json`, or to the path in
    /// the `IMARS_SERVE_OUT` environment variable when set. (Deliberately not the bench
    /// harness's `IMARS_BENCH_OUT`: a bench run that also emits serve telemetry would
    /// otherwise clobber one file with the other.) Returns the path written to.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be written.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = match std::env::var_os("IMARS_SERVE_OUT") {
            Some(path) => std::path::PathBuf::from(path),
            None => {
                let dir = std::path::Path::new("target").join("imars-bench");
                std::fs::create_dir_all(&dir)?;
                dir.join(format!("{}.json", self.name))
            }
        };
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Escape a string for embedding in hand-rolled JSON: backslash, quote, and every
/// control character in `\u{0000}`–`\u{001f}` (newlines and tabs would otherwise emit
/// invalid JSON).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_known_data() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64); // 1..1000 us, uniform
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean_us() - 500.5).abs() < 1e-9);
        assert_eq!(h.min_us(), 1.0);
        assert_eq!(h.max_us(), 1000.0);
        // Log buckets have ~9 % relative resolution; allow 2 bucket widths of slack.
        let p50 = h.quantile_us(0.50);
        assert!((400.0..650.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((900.0..=1000.0).contains(&p99), "p99 {p99}");
        assert!(h.quantile_us(1.0) <= 1000.0);
        assert!(h.quantile_us(0.0) >= 1.0);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut value = 0.37f64;
        for _ in 0..5000 {
            value = (value * 1.37).rem_euclid(97.0) + 0.01;
            h.record(value * 100.0);
        }
        let quantiles: Vec<f64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile_us(q))
            .collect();
        for pair in quantiles.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "quantiles must be monotone: {quantiles:?}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.min_us(), 0.0);
        assert_eq!(h.max_us(), 0.0);
        assert_eq!(h.quantile_us(0.5), 0.0);
    }

    #[test]
    fn bucket_of_clamps_at_both_ends() {
        // Everything at or below the base resolution is bucket 0 — including the exact
        // boundary, negatives, and NaN.
        assert_eq!(LatencyHistogram::bucket_of(0.0), 0);
        assert_eq!(LatencyHistogram::bucket_of(-1.0), 0);
        assert_eq!(LatencyHistogram::bucket_of(f64::NAN), 0);
        assert_eq!(LatencyHistogram::bucket_of(BASE_US), 0);
        assert_eq!(LatencyHistogram::bucket_of(f64::MIN_POSITIVE), 0);
        // The far end saturates into the last bucket instead of indexing past it.
        assert_eq!(LatencyHistogram::bucket_of(f64::MAX), BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_of(f64::INFINITY), BUCKETS - 1);
        // In between, indices are monotone in the latency and within the table.
        let mut last = 0usize;
        let mut latency = BASE_US;
        while latency < 1e12 {
            let bucket = LatencyHistogram::bucket_of(latency);
            assert!(bucket >= last, "buckets must be monotone at {latency}");
            assert!(bucket < BUCKETS);
            last = bucket;
            latency *= 1.7;
        }
        // Each bucket's contents sit at or below its reported upper edge.
        for index in [0, 1, 7, 8, 100, 511] {
            let upper = LatencyHistogram::bucket_upper_us(index);
            assert!(
                LatencyHistogram::bucket_of(upper * 0.999) <= index,
                "value below edge {upper} left bucket {index}"
            );
        }
    }

    #[test]
    fn recording_boundary_latencies_stays_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(BASE_US);
        h.record(f64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min_us(), 0.0);
        assert_eq!(h.max_us(), f64::MAX);
        // Quantiles stay bracketed by the observed extremes, never an out-of-table read.
        assert!(h.quantile_us(0.0) >= 0.0);
        assert!(h.quantile_us(1.0) <= f64::MAX);
    }

    #[test]
    fn degenerate_latencies_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_us(), 0.0);
    }

    #[test]
    fn telemetry_derived_rates() {
        let mut t = ServeTelemetry {
            queries: 1000,
            batches: 40,
            batch_size_sum: 1000,
            candidates_sum: 5000,
            busy_us: 50_000.0,
            makespan_us: 100_000.0,
            ..ServeTelemetry::default()
        };
        t.total_cost = Cost::new(2_000_000.0, 0.0);
        assert!((t.served_qps() - 10_000.0).abs() < 1e-6);
        assert!((t.service_qps() - 20_000.0).abs() < 1e-6);
        assert!((t.mean_batch_size() - 25.0).abs() < 1e-12);
        assert!((t.mean_candidates() - 5.0).abs() < 1e-12);
        assert!((t.energy_pj_per_query() - 2000.0).abs() < 1e-9);
        let empty = ServeTelemetry::default();
        assert_eq!(empty.served_qps(), 0.0);
        assert_eq!(empty.service_qps(), 0.0);
        assert_eq!(empty.mean_batch_size(), 0.0);
        assert_eq!(empty.energy_pj_per_query(), 0.0);
    }

    #[test]
    fn report_json_is_balanced_and_carries_the_headline_fields() {
        let mut telemetry = ServeTelemetry::default();
        for i in 0..100 {
            telemetry.latency.record(50.0 + i as f64);
        }
        telemetry.queries = 100;
        telemetry.batches = 10;
        telemetry.batch_size_sum = 100;
        telemetry.makespan_us = 10_000.0;
        telemetry.busy_us = 5_000.0;
        let report = ServeReport {
            name: "unit \"test\"".to_string(),
            policy: BatchPolicy::new(16, 200.0).unwrap(),
            shards: 4,
            cache_capacity: 64,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry,
            cache: CacheStats {
                hits: 70,
                coalesced: 5,
                misses: 25,
                insertions: 25,
                evictions: 3,
                rejections: 0,
            },
            runtime: None,
            cluster: None,
            metrics: None,
        };
        let json = report.to_json();
        for needle in [
            "\"p50\"",
            "\"p95\"",
            "\"p99\"",
            "\"served_qps\"",
            "\"hit_rate\": 0.75",
            "\"max_batch\": 16",
            "\"energy_pj_per_query\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("unit \\\"test\\\""));
        assert!(
            !json.contains("\"runtime\""),
            "no runtime section for the simulated path"
        );
        let text = report.summary();
        assert!(text.contains("hit rate 75.0%"));
    }

    #[test]
    fn histogram_merge_preserves_exact_aggregates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut reference = LatencyHistogram::new();
        for i in 1..=100 {
            a.record(i as f64);
            reference.record(i as f64);
        }
        for i in 500..=900 {
            b.record(i as f64);
            reference.record(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), reference.count());
        assert_eq!(a.min_us(), reference.min_us());
        assert_eq!(a.max_us(), reference.max_us());
        assert!((a.mean_us() - reference.mean_us()).abs() < 1e-9);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_us(q), reference.quantile_us(q), "quantile {q}");
        }
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn telemetry_merge_adds_counters_and_takes_the_later_makespan() {
        let mut a = ServeTelemetry {
            queries: 10,
            batches: 2,
            batch_size_sum: 10,
            candidates_sum: 30,
            busy_us: 100.0,
            makespan_us: 1000.0,
            ..ServeTelemetry::default()
        };
        a.total_cost = Cost::new(50.0, 5.0);
        let mut b = ServeTelemetry {
            queries: 5,
            batches: 1,
            batch_size_sum: 5,
            candidates_sum: 10,
            busy_us: 40.0,
            makespan_us: 2500.0,
            ..ServeTelemetry::default()
        };
        b.total_cost = Cost::new(30.0, 3.0);
        a.merge(&b);
        assert_eq!(a.queries, 15);
        assert_eq!(a.batches, 3);
        assert_eq!(a.batch_size_sum, 15);
        assert_eq!(a.candidates_sum, 40);
        assert!((a.busy_us - 140.0).abs() < 1e-12);
        assert_eq!(a.makespan_us, 2500.0);
        assert!((a.total_cost.energy_pj - 80.0).abs() < 1e-12);
    }

    #[test]
    fn runtime_stats_derived_rates() {
        let stats = RuntimeStats {
            workers: 2,
            queue_capacity: 16,
            submitted: 90,
            rejected: 10,
            batcher_stalls: 3,
            batcher_stall_us: 250.0,
            queue_depth_max: 12,
            queue_depth_sum: 270,
            queue_depth_samples: 90,
            worker_busy_us: vec![600.0, 400.0],
            wall_us: 1000.0,
        };
        assert!((stats.mean_queue_depth() - 3.0).abs() < 1e-12);
        assert!((stats.rejection_rate() - 0.1).abs() < 1e-12);
        assert!((stats.utilization() - 0.5).abs() < 1e-12);
        let empty = RuntimeStats::default();
        assert_eq!(empty.mean_queue_depth(), 0.0);
        assert_eq!(empty.rejection_rate(), 0.0);
        assert_eq!(empty.utilization(), 0.0);
    }

    #[test]
    fn report_with_runtime_stats_renders_the_measured_section() {
        let report = ServeReport {
            name: "threaded".to_string(),
            policy: BatchPolicy::new(8, 100.0).unwrap(),
            shards: 2,
            cache_capacity: 32,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry: ServeTelemetry::default(),
            cache: CacheStats::default(),
            runtime: Some(RuntimeStats {
                workers: 3,
                queue_capacity: 64,
                submitted: 100,
                rejected: 7,
                batcher_stalls: 2,
                batcher_stall_us: 55.0,
                queue_depth_max: 9,
                queue_depth_sum: 200,
                queue_depth_samples: 100,
                worker_busy_us: vec![10.0, 20.0, 30.0],
                wall_us: 5000.0,
            }),
            cluster: None,
            metrics: None,
        };
        let json = report.to_json();
        for needle in [
            "\"runtime\"",
            "\"workers\": 3",
            "\"rejected\": 7",
            "\"batcher_stalls\": 2",
            "\"queue_depth\"",
            "\"utilization\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.summary();
        assert!(text.contains("3 workers"));
        assert!(text.contains("7 rejected"));
        assert!(
            !json.contains("\"cluster\""),
            "no cluster section for single-node serving"
        );
    }

    #[test]
    fn cluster_stats_derived_rates() {
        let stats = ClusterStats {
            shards: 4,
            workers_per_shard: 2,
            placement: "freq".to_string(),
            hot_replicas: 16,
            queue_capacity: 64,
            fetches: 10,
            subrequests: 25,
            cross_shard_hops: 15,
            cross_shard_bytes: 3000,
            local_bytes: 7000,
            shard_lookups: vec![600, 200, 100, 100],
            shard_rejections: vec![0, 2, 0, 1],
            shard_queue_depth_max: vec![5, 1, 1, 2],
            ..ClusterStats::default()
        };
        assert!((stats.mean_fanout() - 2.5).abs() < 1e-12);
        // max 600 over mean 250 = 2.4x imbalance.
        assert!((stats.imbalance() - 2.4).abs() < 1e-12);
        assert!((stats.cross_traffic_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(stats.total_rejections(), 3);
        assert!(!stats.any_faults_handled());
        let empty = ClusterStats::default();
        assert_eq!(empty.mean_fanout(), 0.0);
        assert_eq!(empty.imbalance(), 0.0);
        assert_eq!(empty.cross_traffic_fraction(), 0.0);
    }

    #[test]
    fn report_with_cluster_stats_renders_the_sharded_section() {
        let report = ServeReport {
            name: "sharded".to_string(),
            policy: BatchPolicy::new(8, 100.0).unwrap(),
            shards: 4,
            cache_capacity: 32,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry: ServeTelemetry::default(),
            cache: CacheStats::default(),
            runtime: None,
            cluster: Some(ClusterStats {
                shards: 4,
                workers_per_shard: 1,
                placement: "range".to_string(),
                hot_replicas: 0,
                queue_capacity: 64,
                fetches: 100,
                subrequests: 320,
                cross_shard_hops: 220,
                cross_shard_bytes: 123_456,
                local_bytes: 500_000,
                shard_lookups: vec![10, 20, 30, 40],
                shard_rejections: vec![0, 0, 1, 0],
                shard_queue_depth_max: vec![3, 2, 2, 1],
                ..ClusterStats::default()
            }),
            metrics: None,
        };
        let json = report.to_json();
        for needle in [
            "\"cluster\"",
            "\"placement\": \"range\"",
            "\"cross_shard_bytes\": 123456",
            "\"cross_shard_hops\": 220",
            "\"mean_fanout\": 3.200",
            "\"shard_lookups\": [10, 20, 30, 40]",
            "\"shard_rejections\": [0, 0, 1, 0]",
            "\"imbalance\"",
            "\"fault_tolerance\"",
            "\"degraded\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let text = report.summary();
        assert!(text.contains("4 shard nodes"));
        assert!(text.contains("cross-shard hops"));
        assert!(text.contains("range placement"));
        assert!(
            !text.contains("fault tolerance:"),
            "a fault-free run prints no fault-tolerance line"
        );
    }

    #[test]
    fn degraded_runs_render_their_accounting() {
        let telemetry = ServeTelemetry {
            queries: 50,
            degraded_queries: 7,
            missing_row_lookups: 12,
            ..Default::default()
        };
        let report = ServeReport {
            name: "chaos".to_string(),
            policy: BatchPolicy::new(8, 100.0).unwrap(),
            shards: 4,
            cache_capacity: 0,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry,
            cache: CacheStats::default(),
            runtime: None,
            cluster: Some(ClusterStats {
                shards: 4,
                placement: "freq".to_string(),
                timeouts: 3,
                retries: 4,
                hedges: 2,
                hedge_wins: 1,
                promotions: 2,
                missing_rows: 12,
                ..ClusterStats::default()
            }),
            metrics: None,
        };
        let json = report.to_json();
        for needle in [
            "\"degraded\": {\"queries\": 7, \"missing_row_lookups\": 12}",
            "\"fault_tolerance\": {\"timeouts\": 3, \"retries\": 4, \"hedges\": 2, \"hedge_wins\": 1, \"promotions\": 2, \"missing_rows\": 12}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.summary();
        assert!(
            text.contains("fault tolerance: 3 timeouts, 4 retries, 2 hedges (1 won), 2 promotions")
        );
        assert!(text.contains("degraded: 7 queries served with 12 missing-row lookups zero-filled"));
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape(r#"plain"#), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line1\nline2"), "line1\\nline2");
        assert_eq!(escape("tab\there"), "tab\\there");
        assert_eq!(escape("cr\rhere"), "cr\\rhere");
        assert_eq!(escape("bell\u{0007}null\u{0000}"), "bell\\u0007null\\u0000");
        assert_eq!(escape("\u{001f}"), "\\u001f");
        // 0x20 and above pass through.
        assert_eq!(escape("ünïcode ok"), "ünïcode ok");
        // A report named with embedded newlines still emits valid JSON: no raw control
        // characters inside the produced string literal.
        let report = ServeReport {
            name: "bad\nname\twith\u{0001}controls".to_string(),
            policy: BatchPolicy::new(8, 100.0).unwrap(),
            shards: 1,
            cache_capacity: 0,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry: ServeTelemetry::default(),
            cache: CacheStats::default(),
            runtime: None,
            cluster: None,
            metrics: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"suite\": \"bad\\nname\\twith\\u0001controls\","));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn latency_json_exports_the_full_bucket_distribution() {
        let mut telemetry = ServeTelemetry::default();
        telemetry.latency.record(1.0);
        telemetry.latency.record(1.0);
        telemetry.latency.record(1000.0);
        telemetry.queries = 3;
        let buckets = telemetry.latency.nonzero_buckets();
        assert_eq!(buckets.len(), 2, "two distinct log buckets: {buckets:?}");
        assert_eq!(buckets[0].1, 2);
        assert_eq!(buckets[1].1, 1);
        assert_eq!(
            buckets.iter().map(|&(_, count)| count).sum::<u64>(),
            telemetry.latency.count(),
            "bucket counts sum to the observation count"
        );
        // Upper edges bracket the recorded values within one bucket width.
        assert!(buckets[0].0 >= 1.0 && buckets[0].0 < 1.2, "{buckets:?}");
        assert!(
            buckets[1].0 >= 1000.0 && buckets[1].0 < 1200.0,
            "{buckets:?}"
        );
        let report = ServeReport {
            name: "buckets".to_string(),
            policy: BatchPolicy::new(8, 100.0).unwrap(),
            shards: 1,
            cache_capacity: 0,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry,
            cache: CacheStats::default(),
            runtime: None,
            cluster: None,
            metrics: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"buckets\": [["), "bucket pairs in {json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn stage_breakdown_renders_tail_attribution_in_summary_and_json() {
        use crate::trace::{QueryTrace, Span, Stage};
        let mut stages = StageBreakdown::default();
        for id in 0..10u64 {
            // 100us end-to-end, 72us of it in the fetch stage.
            let spans = vec![
                Span {
                    stage: Stage::BatchForm,
                    begin_us: 0.0,
                    end_us: 5.0,
                },
                Span {
                    stage: Stage::QueueWait,
                    begin_us: 5.0,
                    end_us: 10.0,
                },
                Span {
                    stage: Stage::CacheLookup,
                    begin_us: 10.0,
                    end_us: 14.0,
                },
                Span {
                    stage: Stage::ClusterFetch,
                    begin_us: 14.0,
                    end_us: 86.0,
                },
                Span {
                    stage: Stage::NnsFilter,
                    begin_us: 86.0,
                    end_us: 92.0,
                },
                Span {
                    stage: Stage::MlpRank,
                    begin_us: 92.0,
                    end_us: 100.0,
                },
            ];
            stages.record(&QueryTrace {
                id,
                start_us: 0.0,
                end_us: 100.0,
                spans,
                cache_hits: 0,
                cache_misses: 0,
                cache_coalesced: 0,
                fetch: Vec::new(),
                events: Vec::new(),
            });
        }
        assert_eq!(stages.sampled, 10);
        for (name, histogram) in stages.stages() {
            assert_eq!(histogram.count(), 10, "stage {name} counts every sample");
        }
        assert_eq!(stages.total.count(), 10);
        let (stage, share) = stages.tail_attribution().expect("nonzero tail");
        assert_eq!(stage, "cluster_fetch");
        assert!((0.6..=0.85).contains(&share), "share {share}");
        // Merging two halves reproduces the whole.
        let mut half = StageBreakdown::default();
        half.merge(&stages);
        half.merge(&stages);
        assert_eq!(half.sampled, 20);
        assert_eq!(half.cluster_fetch.count(), 20);
        let telemetry = ServeTelemetry {
            queries: 160,
            stages,
            ..ServeTelemetry::default()
        };
        let report = ServeReport {
            name: "staged".to_string(),
            policy: BatchPolicy::new(8, 100.0).unwrap(),
            shards: 1,
            cache_capacity: 0,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry,
            cache: CacheStats::default(),
            runtime: None,
            cluster: None,
            metrics: None,
        };
        let json = report.to_json();
        for needle in [
            "\"stage_breakdown\"",
            "\"sampled\": 10",
            "\"tail_attribution\"",
            "\"stage\": \"cluster_fetch\"",
            "\"cluster_fetch\": {\"count\": 10",
            "\"total\": {\"count\": 10",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let text = report.summary();
        assert!(text.contains("stage breakdown (10 queries sampled"));
        assert!(text.contains("% cluster_fetch"), "{text}");
        // Untraced runs keep the section out entirely.
        let silent = ServeReport {
            name: "silent".to_string(),
            policy: BatchPolicy::new(8, 100.0).unwrap(),
            shards: 1,
            cache_capacity: 0,
            cache_policy: "clock".to_string(),
            cache_placement: "router".to_string(),
            telemetry: ServeTelemetry::default(),
            cache: CacheStats::default(),
            runtime: None,
            cluster: None,
            metrics: None,
        };
        assert!(!silent.to_json().contains("stage_breakdown"));
        assert!(!silent.summary().contains("stage breakdown"));
    }
}
