//! Deterministic fault injection for the shard cluster — the chaos harness.
//!
//! A fault-tolerant serving layer is only as trustworthy as the failures it has been
//! shown to survive, and a chaos test is only a *test* if it is reproducible. So a
//! fault here is not a random event: a [`ChaosPlan`] names one shard, one
//! [`FaultKind`], and a deterministic trigger — the fault fires after the target shard
//! has served exactly `fire_after` sub-requests. On the single-router replay drivers
//! the sub-request sequence is itself deterministic, which pins *which* queries hit
//! the degraded window; timing-dependent observables (how fast a timeout is detected)
//! run off the injected [`Clock`](crate::clock::Clock), so tests freeze them with
//! [`ManualClock`](crate::clock::ManualClock).
//!
//! The same plan drives both transports: the in-process cluster checks it inside
//! [`run_shard_worker`](crate::cluster)'s loop, and the socket transport ships it to a
//! shard-node process as a `CHAOS` frame ([`crate::transport`]), where a kill becomes a
//! real `process::exit` mid-replay.
//!
//! Specs parse from `"<fault>:<shard>"` strings (the `serve_replay --chaos` flag):
//! `kill:1`, `stall:0`, `slow:2`, `drop:3`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::ServeError;

/// What the fault does to the target shard once it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The shard node dies: in-process workers panic (closing the input queue), a
    /// socket node exits its process. Permanent.
    Kill,
    /// The node stops serving but stays "up": requests are accepted and never
    /// answered. Permanent; only deadlines expose it.
    Stall,
    /// Every served request is delayed by `delay_us` first — the tail-latency fault
    /// hedged reads are for.
    Slow {
        /// Added service delay per request, microseconds.
        delay_us: u64,
    },
    /// The next `frames` responses are dropped on the floor (served but never sent),
    /// then the node recovers — the transient fault retries are for.
    DropFrames {
        /// How many responses to drop before recovering.
        frames: u64,
    },
}

impl FaultKind {
    /// Wire encoding for the transport's `CHAOS` frame: `(fault code, param)`.
    pub(crate) fn wire_code(self) -> (u8, u64) {
        match self {
            FaultKind::Kill => (1, 0),
            FaultKind::Stall => (2, 0),
            FaultKind::Slow { delay_us } => (3, delay_us),
            FaultKind::DropFrames { frames } => (4, frames),
        }
    }
}

/// Added delay of the default `slow` fault, microseconds.
const DEFAULT_SLOW_US: u64 = 2_000;
/// Responses dropped by the default `drop` fault: one inside the router's retry
/// budget, so the default transient burst is rescued with zero degradation.
const DEFAULT_DROP_FRAMES: u64 = 2;

/// One fault aimed at one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault to inject.
    pub kind: FaultKind,
    /// The shard it hits.
    pub shard: usize,
}

impl FaultSpec {
    /// Parse a `"<fault>:<shard>"` spec: `kill:1`, `stall:0`, `slow:2`, `drop:3`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the malformed part.
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        let invalid = |reason: String| ServeError::InvalidConfig { reason };
        let (fault, shard) = text.split_once(':').ok_or_else(|| {
            invalid(format!(
                "chaos spec '{text}' must be <fault>:<shard> (e.g. kill:1)"
            ))
        })?;
        let shard: usize = shard
            .parse()
            .map_err(|_| invalid(format!("chaos spec '{text}' has a non-numeric shard")))?;
        let kind = match fault {
            "kill" => FaultKind::Kill,
            "stall" => FaultKind::Stall,
            "slow" => FaultKind::Slow {
                delay_us: DEFAULT_SLOW_US,
            },
            "drop" => FaultKind::DropFrames {
                frames: DEFAULT_DROP_FRAMES,
            },
            other => {
                return Err(invalid(format!(
                    "unknown chaos fault '{other}' (use kill, stall, slow or drop)"
                )))
            }
        };
        Ok(Self { kind, shard })
    }
}

/// What a shard worker must do with the sub-request it just picked up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Serve normally.
    None,
    /// Panic (the in-process death).
    Kill,
    /// Stop serving without dying.
    Stall,
    /// Sleep this many microseconds first, then serve.
    SlowUs(u64),
    /// Serve but never send the response.
    DropReply,
}

/// A deterministic fault trigger: `spec.kind` hits `spec.shard` once that shard has
/// served `fire_after` sub-requests. Shared (via `Arc`) by every worker of the target
/// shard so the served count is global to the shard, not per worker.
#[derive(Debug)]
pub struct ChaosPlan {
    spec: FaultSpec,
    fire_after: u64,
    served: AtomicU64,
    dropped: AtomicU64,
}

impl ChaosPlan {
    /// A plan firing `spec` after the target shard serves `fire_after` sub-requests
    /// (0 = the very first request is already faulted).
    pub fn new(spec: FaultSpec, fire_after: u64) -> Self {
        Self {
            spec,
            fire_after,
            served: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Parse-and-build convenience over [`FaultSpec::parse`].
    ///
    /// # Errors
    ///
    /// As for [`FaultSpec::parse`].
    pub fn parse(text: &str, fire_after: u64) -> Result<Self, ServeError> {
        Ok(Self::new(FaultSpec::parse(text)?, fire_after))
    }

    /// The fault and target shard.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Sub-requests the target shard serves before the fault fires.
    pub fn fire_after(&self) -> u64 {
        self.fire_after
    }

    /// Whether the trigger has tripped.
    pub fn fired(&self) -> bool {
        self.served.load(Ordering::SeqCst) > self.fire_after
    }

    /// Account one sub-request arriving at `shard` and return the action it suffers.
    /// Non-target shards always serve normally and are not counted.
    pub(crate) fn action(&self, shard: usize) -> FaultAction {
        if shard != self.spec.shard {
            return FaultAction::None;
        }
        let served = self.served.fetch_add(1, Ordering::SeqCst) + 1;
        if served <= self.fire_after {
            return FaultAction::None;
        }
        match self.spec.kind {
            FaultKind::Kill => FaultAction::Kill,
            FaultKind::Stall => FaultAction::Stall,
            FaultKind::Slow { delay_us } => FaultAction::SlowUs(delay_us),
            FaultKind::DropFrames { frames } => {
                if self.dropped.fetch_add(1, Ordering::SeqCst) < frames {
                    FaultAction::DropReply
                } else {
                    FaultAction::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject_garbage() {
        assert_eq!(
            FaultSpec::parse("kill:1").unwrap(),
            FaultSpec {
                kind: FaultKind::Kill,
                shard: 1
            }
        );
        assert_eq!(FaultSpec::parse("stall:0").unwrap().kind, FaultKind::Stall);
        assert!(matches!(
            FaultSpec::parse("slow:3").unwrap().kind,
            FaultKind::Slow { .. }
        ));
        assert!(matches!(
            FaultSpec::parse("drop:2").unwrap().kind,
            FaultKind::DropFrames { .. }
        ));
        for bad in ["kill", "kill:x", "melt:1", ":", ""] {
            assert!(
                matches!(FaultSpec::parse(bad), Err(ServeError::InvalidConfig { .. })),
                "'{bad}' must not parse"
            );
        }
    }

    #[test]
    fn the_trigger_fires_after_exactly_fire_after_served_requests() {
        let plan = ChaosPlan::parse("kill:2", 3).unwrap();
        // Other shards never count, never fault.
        for _ in 0..10 {
            assert_eq!(plan.action(0), FaultAction::None);
            assert_eq!(plan.action(1), FaultAction::None);
        }
        assert!(!plan.fired());
        // The target serves exactly fire_after requests, then every arrival faults.
        for _ in 0..3 {
            assert_eq!(plan.action(2), FaultAction::None);
        }
        assert!(!plan.fired());
        assert_eq!(plan.action(2), FaultAction::Kill);
        assert!(plan.fired());
        assert_eq!(plan.action(2), FaultAction::Kill);
    }

    #[test]
    fn drop_frames_recovers_after_the_budget() {
        let plan = ChaosPlan::new(
            FaultSpec {
                kind: FaultKind::DropFrames { frames: 2 },
                shard: 0,
            },
            1,
        );
        assert_eq!(plan.action(0), FaultAction::None); // within fire_after
        assert_eq!(plan.action(0), FaultAction::DropReply);
        assert_eq!(plan.action(0), FaultAction::DropReply);
        assert_eq!(plan.action(0), FaultAction::None, "budget spent: recovered");
        assert_eq!(plan.action(0), FaultAction::None);
    }

    #[test]
    fn slow_and_stall_map_to_their_actions() {
        let slow = ChaosPlan::parse("slow:0", 0).unwrap();
        assert!(matches!(slow.action(0), FaultAction::SlowUs(_)));
        let stall = ChaosPlan::parse("stall:0", 0).unwrap();
        assert_eq!(stall.action(0), FaultAction::Stall);
        let (code, param) = FaultKind::Slow { delay_us: 7 }.wire_code();
        assert_eq!((code, param), (3, 7));
    }
}
