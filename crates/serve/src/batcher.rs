//! Dynamic request batching.
//!
//! The batched hot path (`Dlrm::predict_batch`, `gather_pool_batch`) amortizes dispatch
//! and fans work across cores, but live traffic arrives one query at a time. The dynamic
//! batcher buys batch efficiency at a bounded latency price with the standard serving
//! policy (as in clipper/triton-style servers): coalesce queries until either
//! **max_batch** requests are pending (size flush) or the oldest pending request has
//! waited **max_wait_us** (deadline flush).
//!
//! The batcher is clock-agnostic: callers pass arrival/poll timestamps in microseconds
//! on whatever clock they use. The replay driver feeds it virtual timestamps from the
//! traffic trace, which keeps batching decisions deterministic and testable — no
//! wall-clock flakiness in the flush tests.

use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// The coalescing policy: flush on size or on deadline, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Maximum requests per batch (size flush threshold).
    pub max_batch: usize,
    /// Maximum time the oldest pending request may wait, in microseconds.
    pub max_wait_us: f64,
}

impl BatchPolicy {
    /// Build a policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if `max_batch` is zero or `max_wait_us` is
    /// negative or not finite.
    pub fn new(max_batch: usize, max_wait_us: f64) -> Result<Self, ServeError> {
        if max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "batch policy needs max_batch >= 1".to_string(),
            });
        }
        if !max_wait_us.is_finite() || max_wait_us < 0.0 {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "batch policy needs a finite non-negative max_wait_us, got {max_wait_us}"
                ),
            });
        }
        Ok(Self {
            max_batch,
            max_wait_us,
        })
    }
}

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushReason {
    /// The batch reached `max_batch` requests.
    Size,
    /// The oldest pending request reached `max_wait_us`.
    Deadline,
    /// The stream ended and the remainder was drained.
    Drain,
}

/// A flushed batch: the requests in arrival order plus when and why the flush fired.
#[derive(Debug, Clone, PartialEq)]
pub struct FlushedBatch<T> {
    /// The coalesced requests, in arrival order.
    pub requests: Vec<T>,
    /// When the flush fired (microseconds, caller's clock): the filling request's
    /// arrival for a size flush, the deadline for a deadline flush, the drain time for
    /// a drain.
    pub trigger_us: f64,
    /// Which policy edge fired.
    pub reason: FlushReason,
}

impl<T> FlushedBatch<T> {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never true for a batch the batcher emitted).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// The dynamic batcher: one pending batch, flushed on size or deadline.
#[derive(Debug, Clone)]
pub struct DynamicBatcher<T> {
    policy: BatchPolicy,
    pending: Vec<T>,
    oldest_arrival_us: f64,
}

impl<T> DynamicBatcher<T> {
    /// Create an empty batcher with the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        Self {
            policy,
            pending: Vec::with_capacity(policy.max_batch),
            oldest_arrival_us: 0.0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of requests currently pending.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The deadline of the pending batch (oldest arrival + max wait), if any requests
    /// are pending.
    pub fn deadline_us(&self) -> Option<f64> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.oldest_arrival_us + self.policy.max_wait_us)
        }
    }

    /// Flush the pending batch if its deadline has passed at `now_us`. Call this before
    /// offering a request that arrives at `now_us`, so an overdue batch is not grown
    /// past its deadline.
    pub fn poll(&mut self, now_us: f64) -> Option<FlushedBatch<T>> {
        match self.deadline_us() {
            Some(deadline) if deadline <= now_us => Some(FlushedBatch {
                requests: std::mem::take(&mut self.pending),
                trigger_us: deadline,
                reason: FlushReason::Deadline,
            }),
            _ => None,
        }
    }

    /// Enqueue a request arriving at `arrival_us`; flushes and returns the batch when it
    /// reaches the size threshold. Arrivals must be offered in non-decreasing time order.
    pub fn offer(&mut self, request: T, arrival_us: f64) -> Option<FlushedBatch<T>> {
        if self.pending.is_empty() {
            self.oldest_arrival_us = arrival_us;
        }
        self.pending.push(request);
        if self.pending.len() >= self.policy.max_batch {
            Some(FlushedBatch {
                requests: std::mem::take(&mut self.pending),
                trigger_us: arrival_us,
                reason: FlushReason::Size,
            })
        } else {
            None
        }
    }

    /// Flush whatever is pending at end of stream (`now_us` = drain time).
    pub fn drain(&mut self, now_us: f64) -> Option<FlushedBatch<T>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(FlushedBatch {
                requests: std::mem::take(&mut self.pending),
                trigger_us: now_us,
                reason: FlushReason::Drain,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max_batch: usize, max_wait_us: f64) -> BatchPolicy {
        BatchPolicy::new(max_batch, max_wait_us).unwrap()
    }

    #[test]
    fn policy_validation() {
        assert!(BatchPolicy::new(0, 100.0).is_err());
        assert!(BatchPolicy::new(8, -1.0).is_err());
        assert!(BatchPolicy::new(8, f64::NAN).is_err());
        assert!(BatchPolicy::new(8, 0.0).is_ok());
    }

    #[test]
    fn flushes_on_size_with_arrival_order_preserved() {
        let mut batcher = DynamicBatcher::new(policy(3, 1e9));
        assert!(batcher.offer(10, 0.0).is_none());
        assert!(batcher.offer(11, 1.0).is_none());
        assert_eq!(batcher.pending(), 2);
        let batch = batcher.offer(12, 2.0).expect("size flush");
        assert_eq!(batch.requests, vec![10, 11, 12]);
        assert_eq!(batch.reason, FlushReason::Size);
        assert_eq!(batch.trigger_us, 2.0);
        assert_eq!(batcher.pending(), 0);
        assert_eq!(batcher.deadline_us(), None);
    }

    #[test]
    fn flushes_on_deadline() {
        let mut batcher = DynamicBatcher::new(policy(100, 500.0));
        assert!(batcher.offer(1, 1000.0).is_none());
        assert!(batcher.offer(2, 1200.0).is_none());
        // Deadline tracks the OLDEST pending arrival.
        assert_eq!(batcher.deadline_us(), Some(1500.0));
        assert!(batcher.poll(1499.9).is_none());
        let batch = batcher.poll(1600.0).expect("deadline flush");
        assert_eq!(batch.requests, vec![1, 2]);
        assert_eq!(batch.reason, FlushReason::Deadline);
        assert_eq!(batch.trigger_us, 1500.0);
        assert!(
            batcher.poll(2000.0).is_none(),
            "nothing pending after the flush"
        );
    }

    #[test]
    fn deadline_resets_after_each_flush() {
        let mut batcher = DynamicBatcher::new(policy(2, 100.0));
        let first = batcher.offer(1, 0.0);
        assert!(first.is_none());
        let flushed = batcher.offer(2, 10.0).unwrap();
        assert_eq!(flushed.len(), 2);
        assert!(!flushed.is_empty());
        // A new batch starts its own deadline from its own oldest arrival.
        assert!(batcher.offer(3, 500.0).is_none());
        assert_eq!(batcher.deadline_us(), Some(600.0));
    }

    #[test]
    fn drain_returns_the_remainder() {
        let mut batcher = DynamicBatcher::new(policy(10, 1e6));
        assert!(batcher.drain(0.0).is_none());
        batcher.offer(7, 3.0);
        let batch = batcher.drain(9.0).expect("drain flush");
        assert_eq!(batch.requests, vec![7]);
        assert_eq!(batch.reason, FlushReason::Drain);
        assert_eq!(batch.trigger_us, 9.0);
    }

    #[test]
    fn max_batch_one_flushes_every_offer() {
        let mut batcher = DynamicBatcher::new(policy(1, 1e6));
        for i in 0..5 {
            let batch = batcher.offer(i, i as f64).expect("immediate flush");
            assert_eq!(batch.requests, vec![i]);
        }
    }
}
