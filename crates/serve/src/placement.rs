//! Catalogue placement across shard nodes: which shard owns which rows, and how a
//! batch's lookups split into per-shard sub-requests.
//!
//! Two policies are supported:
//!
//! * [`Placement::Range`] — contiguous row ranges in catalogue-id order (the layout
//!   [`ShardedTable`](crate::shard::ShardedTable) uses in-process). On a catalogue whose
//!   ids are popularity-sorted this co-locates the hot head; on a real catalogue with
//!   arbitrary ids it scatters hot rows uniformly.
//! * [`Placement::Frequency`] — rows sorted by a measured access histogram (the Zipf
//!   replay trace), hottest chunk on shard 0, so hot rows pack onto few shards
//!   regardless of id order (the RecFlash-style placement).
//!
//! Either policy can additionally **replicate** the `hot_replicas` hottest rows onto
//! every shard. A replicated row is then served by whichever shard a batch already
//! talks to most (its *home* shard), which removes those rows from the cross-shard
//! traffic entirely.
//!
//! The split itself ([`ShardPlan::split`]) is a pure, deterministic function of the plan
//! and the lookup list: positions are scanned in flat order, every position is assigned
//! to exactly one serving shard (no loss, no duplication — replication affects *where*
//! a row can be served, not how many sub-requests carry it), and per-shard sub-batches
//! keep the scan order so the gather stage can merge them canonically.
//!
//! # Example: building a plan and splitting a batch
//!
//! ```
//! use imars_serve::{Placement, ShardPlan};
//!
//! // An 8-row catalogue over 2 shards, range placement, no replication:
//! // rows 0..=3 live on shard 0 and rows 4..=7 on shard 1.
//! let plan = ShardPlan::build(8, 2, Placement::Range, 0, None).unwrap();
//! assert_eq!(plan.primary_shard(3), 0);
//! assert_eq!(plan.primary_shard(4), 1);
//!
//! // A batch touching both halves splits into one sub-request per shard; the
//! // positions recorded per sub-batch let the gather stage merge canonically.
//! let split = plan.split(&[1, 6, 2]);
//! assert_eq!(split.fanout(), 2);
//! assert_eq!(split.per_shard[0].rows, vec![1, 2]);
//! assert_eq!(split.per_shard[1].rows, vec![6]);
//! assert_eq!(split.home, 0); // shard 0 serves the plurality of the batch
//! ```

use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// The placement policy assigning catalogue rows to shard nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Contiguous row ranges in catalogue-id order.
    Range,
    /// Rows sorted by measured access frequency, hottest chunk first.
    Frequency,
}

impl Placement {
    /// A short label for reports ("range" / "freq").
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Range => "range",
            Placement::Frequency => "freq",
        }
    }
}

/// The materialized placement: every row's primary shard plus the replicated hot set.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    placement: Placement,
    rows: usize,
    hot_replicas: usize,
    /// Row id -> primary shard.
    primary: Vec<u32>,
    /// Row id -> `true` when a copy lives on every shard.
    replicated: Vec<bool>,
    /// Shard -> global row ids stored there (primary rows first, then replicas), in a
    /// deterministic order.
    shard_rows: Vec<Vec<u32>>,
}

impl ShardPlan {
    /// Build a plan for `rows` catalogue rows over at most `shards` shard nodes.
    ///
    /// `histogram` is the measured per-row access count driving
    /// [`Placement::Frequency`] (and the choice of replicated hot rows under either
    /// policy); [`Placement::Range`] without a histogram treats row order as rank, the
    /// assumption the in-process [`ShardedTable`](crate::shard::ShardedTable) already
    /// makes. Fewer shards are created when there are fewer rows than requested.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if `rows` or `shards` is zero, if
    /// `hot_replicas >= rows`, or if the histogram length does not match `rows`.
    pub fn build(
        rows: usize,
        shards: usize,
        placement: Placement,
        hot_replicas: usize,
        histogram: Option<&[u64]>,
    ) -> Result<Self, ServeError> {
        if rows == 0 || shards == 0 {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "shard plan needs nonzero rows and shards, got rows={rows} shards={shards}"
                ),
            });
        }
        if hot_replicas >= rows {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "hot_replicas ({hot_replicas}) must be smaller than the catalogue ({rows} rows)"
                ),
            });
        }
        if let Some(histogram) = histogram {
            if histogram.len() != rows {
                return Err(ServeError::ShapeMismatch {
                    what: "placement histogram",
                    expected: rows,
                    actual: histogram.len(),
                });
            }
        }
        if placement == Placement::Frequency && histogram.is_none() {
            return Err(ServeError::InvalidConfig {
                reason: "frequency placement needs an access histogram".to_string(),
            });
        }
        // The measured-popularity order, computed once: (count desc, id asc) — the
        // tiebreak keeps it a pure function of the histogram. It drives the frequency
        // placement AND the hot-set choice, so the two can never disagree.
        let by_count: Option<Vec<u32>> = histogram.map(|histogram| {
            let mut by_count: Vec<u32> = (0..rows as u32).collect();
            by_count.sort_by(|&a, &b| {
                histogram[b as usize]
                    .cmp(&histogram[a as usize])
                    .then(a.cmp(&b))
            });
            by_count
        });
        // Rows in placement order: id order for range, popularity order for frequency.
        let order: Vec<u32> = match placement {
            Placement::Range => (0..rows as u32).collect(),
            Placement::Frequency => by_count.clone().expect("checked above"),
        };
        let rows_per_shard = rows.div_ceil(shards).max(1);
        let num_shards = rows.div_ceil(rows_per_shard);
        let mut primary = vec![0u32; rows];
        let mut shard_rows: Vec<Vec<u32>> = (0..num_shards).map(|_| Vec::new()).collect();
        for (slot, &row) in order.iter().enumerate() {
            let shard = slot / rows_per_shard;
            primary[row as usize] = shard as u32;
            shard_rows[shard].push(row);
        }
        // The hot set: the head of the measured-popularity order when a histogram is
        // available, else the id head (range treats row order as rank, like the
        // in-process table).
        let mut replicated = vec![false; rows];
        let hot: Vec<u32> = by_count
            .as_deref()
            .unwrap_or(&order)
            .iter()
            .copied()
            .take(hot_replicas)
            .collect();
        for &row in &hot {
            replicated[row as usize] = true;
        }
        for (shard, stored) in shard_rows.iter_mut().enumerate() {
            for &row in &hot {
                if primary[row as usize] as usize != shard {
                    stored.push(row);
                }
            }
        }
        Ok(Self {
            placement,
            rows,
            hot_replicas,
            primary,
            replicated,
            shard_rows,
        })
    }

    /// The policy the plan was built with.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Catalogue rows covered by the plan.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of shards actually created (≤ the requested count for tiny catalogues).
    pub fn num_shards(&self) -> usize {
        self.shard_rows.len()
    }

    /// Number of rows replicated onto every shard.
    pub fn hot_replicas(&self) -> usize {
        self.hot_replicas
    }

    /// The shard owning the primary copy of `row`. Panics on an out-of-range row; use
    /// [`ShardPlan::check_indices`] on untrusted input.
    #[inline]
    pub fn primary_shard(&self, row: u32) -> usize {
        self.primary[row as usize] as usize
    }

    /// Whether a copy of `row` lives on every shard.
    #[inline]
    pub fn is_replicated(&self, row: u32) -> bool {
        self.replicated[row as usize]
    }

    /// Global row ids stored on `shard` (primary rows first, then replicas), in the
    /// deterministic storage order the shard node indexes.
    pub fn rows_on(&self, shard: usize) -> &[u32] {
        &self.shard_rows[shard]
    }

    /// Validate that every index addresses a valid row.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::RowOutOfRange`] naming the first offending index.
    pub fn check_indices(&self, indices: &[u32]) -> Result<(), ServeError> {
        for &index in indices {
            if index as usize >= self.rows {
                return Err(ServeError::RowOutOfRange {
                    row: index as usize,
                    rows: self.rows,
                });
            }
        }
        Ok(())
    }

    /// The home shard of a lookup list: the shard owning the primary copy of the most
    /// *non-replicated* lookups (ties broken toward the lower shard id). Replicated rows
    /// can be served from any shard, so they follow the home instead of voting for it.
    /// Deterministic, so the routing — and therefore the interconnect charge — is a pure
    /// function of the batch.
    pub fn home_shard(&self, rows: impl Iterator<Item = u32>) -> usize {
        let mut counts = vec![0u64; self.num_shards()];
        for row in rows {
            if !self.is_replicated(row) {
                counts[self.primary_shard(row)] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(shard, _)| shard)
            .unwrap_or(0)
    }

    /// Split a flat lookup list into per-shard sub-batches.
    ///
    /// Every `(position, row)` pair is served by exactly one shard: the batch's home
    /// shard when the row is replicated (or primarily owned there), its primary owner
    /// otherwise. Within a sub-batch, positions keep the flat scan order, which makes
    /// the split (and the gather that reverses it) canonical.
    pub fn split(&self, rows: &[u32]) -> ShardSplit {
        let home = self.home_shard(rows.iter().copied());
        let mut per_shard: Vec<SubBatch> = (0..self.num_shards())
            .map(|shard| SubBatch {
                shard,
                rows: Vec::new(),
                positions: Vec::new(),
            })
            .collect();
        for (position, &row) in rows.iter().enumerate() {
            let shard = if self.is_replicated(row) {
                home
            } else {
                self.primary_shard(row)
            };
            per_shard[shard].rows.push(row);
            per_shard[shard].positions.push(position as u32);
        }
        per_shard.retain(|sub| !sub.rows.is_empty());
        ShardSplit { home, per_shard }
    }
}

/// The lookups one shard serves for one routed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SubBatch {
    /// The serving shard.
    pub shard: usize,
    /// Global row ids to fetch, in flat scan order.
    pub rows: Vec<u32>,
    /// The flat position of each row in the original lookup list.
    pub positions: Vec<u32>,
}

/// A routed batch: the home shard plus the non-empty per-shard sub-batches in shard
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSplit {
    /// The shard serving the plurality of the batch (local traffic).
    pub home: usize,
    /// Non-empty sub-batches, ascending by shard id.
    pub per_shard: Vec<SubBatch>,
}

impl ShardSplit {
    /// Number of shards the batch touches (the fan-out width).
    pub fn fanout(&self) -> usize {
        self.per_shard.len()
    }

    /// Number of touched shards other than the home shard (the cross-shard hops).
    pub fn hops(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|sub| sub.shard != self.home)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_validates_inputs() {
        assert!(ShardPlan::build(0, 4, Placement::Range, 0, None).is_err());
        assert!(ShardPlan::build(16, 0, Placement::Range, 0, None).is_err());
        assert!(ShardPlan::build(16, 4, Placement::Range, 16, None).is_err());
        assert!(ShardPlan::build(16, 4, Placement::Frequency, 0, None).is_err());
        let short = vec![1u64; 8];
        assert!(matches!(
            ShardPlan::build(16, 4, Placement::Frequency, 0, Some(&short)),
            Err(ServeError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn range_plan_matches_contiguous_chunking() {
        let plan = ShardPlan::build(100, 4, Placement::Range, 0, None).unwrap();
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.primary_shard(0), 0);
        assert_eq!(plan.primary_shard(24), 0);
        assert_eq!(plan.primary_shard(25), 1);
        assert_eq!(plan.primary_shard(99), 3);
        assert!(!plan.is_replicated(0));
        assert_eq!(plan.rows_on(0), (0..25u32).collect::<Vec<_>>().as_slice());
        // Tiny catalogues collapse to fewer shards, like the in-process table.
        let tiny = ShardPlan::build(3, 16, Placement::Range, 0, None).unwrap();
        assert_eq!(tiny.num_shards(), 3);
    }

    #[test]
    fn frequency_plan_packs_the_measured_head_onto_shard_zero() {
        // Row 7 is by far the hottest, then 3, then 5; ids are otherwise cold.
        let mut histogram = vec![1u64; 8];
        histogram[7] = 100;
        histogram[3] = 50;
        histogram[5] = 25;
        let plan = ShardPlan::build(8, 4, Placement::Frequency, 0, Some(&histogram)).unwrap();
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.rows_on(0), &[7, 3]);
        assert_eq!(plan.rows_on(1), &[5, 0]);
        assert_eq!(plan.primary_shard(7), 0);
        assert_eq!(plan.primary_shard(3), 0);
        assert_eq!(plan.primary_shard(5), 1);
    }

    #[test]
    fn replicas_land_on_every_shard_and_only_the_hot_set() {
        let mut histogram = vec![1u64; 12];
        histogram[9] = 100;
        histogram[2] = 90;
        let plan = ShardPlan::build(12, 3, Placement::Frequency, 2, Some(&histogram)).unwrap();
        assert!(plan.is_replicated(9));
        assert!(plan.is_replicated(2));
        assert_eq!((0..12u32).filter(|&r| plan.is_replicated(r)).count(), 2);
        for shard in 0..plan.num_shards() {
            assert!(plan.rows_on(shard).contains(&9), "shard {shard} misses 9");
            assert!(plan.rows_on(shard).contains(&2), "shard {shard} misses 2");
        }
        // Storage duplicates exactly the replicas: primaries partition the catalogue.
        let total_stored: usize = (0..plan.num_shards()).map(|s| plan.rows_on(s).len()).sum();
        assert_eq!(total_stored, 12 + 2 * (plan.num_shards() - 1));
        // Range placement picks the same hot set when given the histogram.
        let range = ShardPlan::build(12, 3, Placement::Range, 2, Some(&histogram)).unwrap();
        assert!(range.is_replicated(9));
        assert!(range.is_replicated(2));
        // ...and falls back to the id head without one.
        let blind = ShardPlan::build(12, 3, Placement::Range, 2, None).unwrap();
        assert!(blind.is_replicated(0));
        assert!(blind.is_replicated(1));
    }

    #[test]
    fn home_shard_takes_the_plurality_with_low_id_tiebreak() {
        let plan = ShardPlan::build(40, 4, Placement::Range, 0, None).unwrap();
        // Rows 0..10 are shard 0, 10..20 shard 1, etc.
        assert_eq!(plan.home_shard([0, 1, 2, 15].iter().copied()), 0);
        assert_eq!(plan.home_shard([15, 16, 17, 0].iter().copied()), 1);
        // A 2-2 tie goes to the lower shard id.
        assert_eq!(plan.home_shard([0, 1, 15, 16].iter().copied()), 0);
        assert_eq!(plan.home_shard([35, 36, 15, 16].iter().copied()), 1);
        assert_eq!(plan.home_shard(std::iter::empty()), 0);
    }

    #[test]
    fn split_partitions_positions_exactly() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..200 {
            let rows = rng.gen_range(1..300usize);
            let shards = rng.gen_range(1..9usize);
            let hot = rng.gen_range(0..rows.min(20));
            let placement = if trial % 2 == 0 {
                Placement::Range
            } else {
                Placement::Frequency
            };
            let histogram: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..1000u64)).collect();
            let plan = ShardPlan::build(rows, shards, placement, hot, Some(&histogram)).unwrap();
            let lookups: Vec<u32> = (0..rng.gen_range(0..120usize))
                .map(|_| rng.gen_range(0..rows as u32))
                .collect();
            let split = plan.split(&lookups);
            // Exactly one serving shard per position: reassembling the sub-batches
            // reproduces the original lookup list with no loss and no duplication.
            let mut reassembled = vec![None; lookups.len()];
            let mut last_shard = None;
            for sub in &split.per_shard {
                assert!(last_shard < Some(sub.shard), "sub-batches in shard order");
                last_shard = Some(sub.shard);
                assert_eq!(sub.rows.len(), sub.positions.len());
                assert!(!sub.rows.is_empty(), "empty sub-batches are dropped");
                let mut last_position = None;
                for (&row, &position) in sub.rows.iter().zip(&sub.positions) {
                    assert!(
                        last_position < Some(position),
                        "positions keep flat scan order"
                    );
                    last_position = Some(position);
                    assert!(
                        reassembled[position as usize].replace(row).is_none(),
                        "position {position} served twice"
                    );
                    // The serving shard actually stores the row.
                    assert!(plan.rows_on(sub.shard).contains(&row));
                    if !plan.is_replicated(row) {
                        assert_eq!(sub.shard, plan.primary_shard(row));
                    } else {
                        assert_eq!(sub.shard, split.home, "replicas serve from home");
                    }
                }
            }
            let reassembled: Vec<u32> = reassembled.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(reassembled, lookups);
            assert_eq!(
                split.hops(),
                split.fanout()
                    - usize::from(
                        split.fanout() > 0 && split.per_shard.iter().any(|s| s.shard == split.home)
                    )
            );
            // The split is a pure function of the plan and the lookups.
            assert_eq!(plan.split(&lookups), split);
        }
    }

    #[test]
    fn replication_cuts_the_fanout_of_hot_heavy_batches() {
        // Hot rows 0..4 scattered by a frequency plan... replicate them and a batch of
        // hot rows plus one cold row collapses to the cold row's shard.
        let histogram: Vec<u64> = (0..64u64).map(|row| 1000 / (row + 1)).collect();
        let none = ShardPlan::build(64, 4, Placement::Range, 0, Some(&histogram)).unwrap();
        let replicated = ShardPlan::build(64, 4, Placement::Range, 8, Some(&histogram)).unwrap();
        let lookups = [0u32, 1, 2, 3, 40, 41];
        let before = none.split(&lookups);
        let after = replicated.split(&lookups);
        assert!(after.fanout() < before.fanout());
        assert_eq!(
            after.home, 2,
            "cold rows 40/41 own the plurality of primaries... "
        );
        assert!(after.hops() <= before.hops());
    }
}
