//! The serving engine: dynamic batching in front of the sharded, cached embedding layer,
//! TCAM candidate filtering, and batched DLRM ranking.
//!
//! One query flows through the paper's two serving stages:
//!
//! 1. **profile pooling** — the query's multi-hot item history is sum-pooled through the
//!    hot-row cache and the embedding shards into a user profile vector (the GPCiM
//!    workload; the engine charges one CMA RAM read per cache *miss* and one in-memory
//!    add per accumulated row, so the cache hit rate translates directly into modeled
//!    energy savings);
//! 2. **filtering + ranking** — the profile is LSH-signed and matched against the item
//!    signatures in TCAM mode ([`CmaArray::search_batch`], one serialized search charge
//!    per query), then the profile becomes the dense input of a [`Dlrm`] sample and the
//!    batch is scored over the zero-allocation `predict_batch` hot path.
//!
//! Everything downstream of the batcher operates on whole batches, and all numeric
//! results are bit-identical whether the cache is enabled or not (cached rows are exact
//! copies and accumulation order is the request order) — the equivalence the test suite
//! pins down.
//!
//! Replay timing is a discrete-event simulation: arrivals come from the trace's virtual
//! clock, service times are measured on the real machine, and a request's reported
//! latency is queue wait (virtual) plus the measured service time of its batch.

use std::time::Instant;

use imars_device::characterization::ArrayFom;
use imars_fabric::cma::CmaArray;
use imars_fabric::cost::{Cost, CostComponent};
use imars_recsys::arena::RowArena;
use imars_recsys::batch::PoolingBatch;
use imars_recsys::dlrm::{Dlrm, DlrmSample};
use imars_recsys::embedding::EmbeddingTable;
use imars_recsys::lsh::RandomHyperplaneLsh;
use imars_recsys::quantization::{QuantizationParams, QuantizedTable};
use serde::{Deserialize, Serialize};

use imars_datasets::workload::InferenceQuery;

use crate::batcher::{BatchPolicy, DynamicBatcher, FlushedBatch};
use crate::cache::{CachePlacement, CachePolicy, CacheStats, HotRowCache};
use crate::clock::Clock;
use crate::cluster::{
    connect_cluster, spawn_cluster_with, ClusterClient, ClusterConfig, ClusterCounters,
    ClusterHandle, ClusterOptions, NodeCacheConfig,
};
use crate::error::ServeError;
use crate::metrics::{MetricsConfig, MetricsScraper};
use crate::placement::ShardPlan;
use crate::replay::ReplayWorkload;
use crate::shard::{shard_embedding, Lane, RowSource, ShardedTable};
use crate::telemetry::{ClusterStats, ServeReport, ServeTelemetry};
use crate::trace::{BatchScratch, PoolTrace, TraceConfig, TraceLog, Tracer};
use imars_fabric::cost::CostBreakdown;
use std::sync::Arc;

/// Numeric format of the item embedding rows the engine serves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServePrecision {
    /// Full-precision rows, plain f32 accumulation (the GPU-baseline format).
    Fp32,
    /// Int8-quantized rows with saturating accumulation (the CMA row format); pooled
    /// profiles are dequantized before filtering and ranking.
    Int8,
}

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of embedding shards (contiguous row ranges).
    pub shards: usize,
    /// Hot-row cache capacity in rows (0 disables the cache). Under
    /// [`CachePlacement::Shard`] this is the *total* budget, split evenly across the
    /// shard nodes (rounded up per shard).
    pub cache_capacity: usize,
    /// Replacement/admission policy of the hot-row cache.
    pub cache_policy: CachePolicy,
    /// Where the hot-row cache lives: one cache at the router (the classic layout) or
    /// one per shard node, co-located with the rows it fronts.
    pub cache_placement: CachePlacement,
    /// Group each batch's requests by home shard before pooling, so a sub-request
    /// carries a whole request group to its home shard and cross-shard hops amortize.
    /// Responses are bit-identical either way; only fetch fan-out and counters move.
    pub shard_batching: bool,
    /// Row format served from the shards.
    pub precision: ServePrecision,
    /// Dynamic batching policy.
    pub policy: BatchPolicy,
    /// LSH signature width in bits (the paper uses 256).
    pub signature_bits: usize,
    /// TCAM fixed-radius threshold for candidate filtering.
    pub search_radius: u32,
    /// Seed of the LSH hyperplanes.
    pub lsh_seed: u64,
}

impl ServeConfig {
    /// The paper-shaped serving point: 4 shards, 256-bit signatures, a fixed radius that
    /// passes O(100) candidates on a few-thousand-item catalogue, and a 64-deep /
    /// 500 µs batching window.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors [`BatchPolicy::new`].
    pub fn paper_serving(cache_capacity: usize) -> Result<Self, ServeError> {
        Ok(Self {
            shards: 4,
            cache_capacity,
            cache_policy: CachePolicy::Clock,
            cache_placement: CachePlacement::Router,
            shard_batching: false,
            precision: ServePrecision::Fp32,
            policy: BatchPolicy::new(64, 500.0)?,
            signature_bits: 256,
            search_radius: 112,
            lsh_seed: 77,
        })
    }

    /// Capacity of the router-side cache under this layout: the full budget for
    /// [`CachePlacement::Router`], zero when the rows are cached at the shard nodes
    /// (the router then still runs its capacity-0 cache as the coalescing ledger).
    fn router_cache_capacity(&self) -> usize {
        match self.cache_placement {
            CachePlacement::Router => self.cache_capacity,
            CachePlacement::Shard => 0,
        }
    }

    /// Per-shard-node cache capacity: the total budget split evenly (rounded up) over
    /// the `shards` actually built. Zero unless the layout is [`CachePlacement::Shard`].
    fn node_cache_capacity(&self, shards: usize) -> usize {
        match self.cache_placement {
            CachePlacement::Router => 0,
            CachePlacement::Shard => self.cache_capacity.div_ceil(shards.max(1)),
        }
    }

    /// The node-cache configuration the cluster constructors hand to the shard nodes
    /// (`None` when the cache stays at the router or the budget is zero).
    fn node_cache_config(&self, shards: usize) -> Option<NodeCacheConfig> {
        let capacity = self.node_cache_capacity(shards);
        (capacity > 0).then_some(NodeCacheConfig {
            capacity,
            policy: self.cache_policy,
        })
    }
}

/// One timed serving request: the inference query plus the features the engine needs to
/// execute it (multi-hot item history and DLRM categorical values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Request id (trace position).
    pub id: u64,
    /// Arrival timestamp in microseconds on the trace's virtual clock.
    pub arrival_us: f64,
    /// The underlying inference query (user, candidate budget, top-k).
    pub query: InferenceQuery,
    /// Multi-hot item history: catalogue rows pooled into the user profile.
    pub history: Vec<u32>,
    /// One categorical value per DLRM sparse field.
    pub sparse: Vec<usize>,
}

/// The served result of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Request id the response answers.
    pub id: u64,
    /// Predicted click-through rate from the ranking stage.
    pub score: f32,
    /// Candidates the TCAM filtering stage passed to ranking (capped at the query's
    /// candidate budget).
    pub candidates: usize,
    /// End-to-end latency in microseconds (queue wait + batch service); filled by
    /// [`ServeEngine::replay`], zero for direct [`ServeEngine::process_batch`] calls.
    pub latency_us: f64,
}

/// The result of one replay run: every response plus the aggregated report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Responses in completion order (batch by batch, arrival order within a batch).
    pub responses: Vec<ServeResponse>,
    /// Aggregated latency/throughput/cache/cost report.
    pub report: ServeReport,
    /// Sampled query traces (empty unless [`ServeEngine::enable_tracing`] was called).
    pub trace: TraceLog,
}

/// The sharded + cached item row store: in-process shards or a multi-node cluster, in
/// one of the two served precisions.
#[derive(Debug, Clone)]
enum ItemStore {
    Fp32 {
        shards: ShardedTable<f32>,
        cache: HotRowCache<f32>,
    },
    Int8 {
        shards: ShardedTable<i8>,
        cache: HotRowCache<i8>,
        params: QuantizationParams,
    },
    ClusterFp32 {
        client: ClusterClient<f32>,
        cache: HotRowCache<f32>,
    },
    ClusterInt8 {
        client: ClusterClient<i8>,
        cache: HotRowCache<i8>,
        params: QuantizationParams,
    },
}

impl ItemStore {
    fn num_shards(&self) -> usize {
        match self {
            ItemStore::Fp32 { shards, .. } => shards.num_shards(),
            ItemStore::Int8 { shards, .. } => shards.num_shards(),
            ItemStore::ClusterFp32 { client, .. } => client.plan().num_shards(),
            ItemStore::ClusterInt8 { client, .. } => client.plan().num_shards(),
        }
    }

    /// The run's combined cache counters: the router cache merged with whatever the
    /// per-shard-node caches absorbed. A router miss that a node cache served is *not*
    /// a storage read, so node hits are subtracted back out of the router's misses —
    /// `misses` stays "rows actually read from shard storage", which is exactly what
    /// the GPCiM cost model charges a CMA RAM read for. With node caches off the node
    /// side is all-zero and this degenerates to the router cache's own counters.
    fn cache_stats(&self) -> CacheStats {
        let (router, node) = match self {
            ItemStore::Fp32 { shards, cache } => (cache.stats(), shards.node_cache_stats()),
            ItemStore::Int8 { shards, cache, .. } => (cache.stats(), shards.node_cache_stats()),
            ItemStore::ClusterFp32 { client, cache } => {
                (cache.stats(), client.counters().node_cache_stats())
            }
            ItemStore::ClusterInt8 { client, cache, .. } => {
                (cache.stats(), client.counters().node_cache_stats())
            }
        };
        CacheStats {
            hits: router.hits + node.hits,
            coalesced: router.coalesced + node.coalesced,
            // Saturating: replica/hedge duplicates can make node lookups outnumber
            // router misses on a faulted cluster.
            misses: router.misses.saturating_sub(node.hits),
            insertions: router.insertions + node.insertions,
            evictions: router.evictions + node.evictions,
            rejections: router.rejections + node.rejections,
        }
    }

    fn reset_cache_stats(&mut self) {
        match self {
            ItemStore::Fp32 { shards, cache } => {
                cache.reset_stats();
                shards.reset_node_cache_stats();
            }
            ItemStore::Int8 { shards, cache, .. } => {
                cache.reset_stats();
                shards.reset_node_cache_stats();
            }
            ItemStore::ClusterFp32 { client, cache } => {
                cache.reset_stats();
                client.counters().reset();
            }
            ItemStore::ClusterInt8 { client, cache, .. } => {
                cache.reset_stats();
                client.counters().reset();
            }
        }
    }

    /// The interconnect cost the cluster accumulated since the last collection (zero
    /// for in-process stores).
    fn take_interconnect(&mut self) -> (Cost, CostBreakdown) {
        match self {
            ItemStore::ClusterFp32 { client, .. } => client.take_interconnect(),
            ItemStore::ClusterInt8 { client, .. } => client.take_interconnect(),
            _ => (Cost::ZERO, CostBreakdown::new()),
        }
    }

    /// Router-side cache counters only. The metrics plane's per-window cache
    /// attribution reads these instead of [`ItemStore::cache_stats`]: the node-cache
    /// counters are shared atomics that other worker clones mutate concurrently, so
    /// folding them into a window would make the per-window split nondeterministic.
    fn router_cache_stats(&self) -> CacheStats {
        match self {
            ItemStore::Fp32 { cache, .. } => cache.stats(),
            ItemStore::Int8 { cache, .. } => cache.stats(),
            ItemStore::ClusterFp32 { cache, .. } => cache.stats(),
            ItemStore::ClusterInt8 { cache, .. } => cache.stats(),
        }
    }

    /// Drain the router clone's per-shard fault deltas (empty for in-process stores
    /// and fault-free batches).
    fn take_fault_deltas(&mut self) -> Vec<crate::metrics::ShardFaultDelta> {
        match self {
            ItemStore::ClusterFp32 { client, .. } => client.take_fault_deltas(),
            ItemStore::ClusterInt8 { client, .. } => client.take_fault_deltas(),
            _ => Vec::new(),
        }
    }

    /// A snapshot of the cluster counters (None for in-process stores).
    fn cluster_stats(&self) -> Option<ClusterStats> {
        match self {
            ItemStore::ClusterFp32 { client, .. } => Some(client.stats()),
            ItemStore::ClusterInt8 { client, .. } => Some(client.stats()),
            _ => None,
        }
    }

    /// The shared cluster counters, for reporters that outlive this engine clone.
    pub(crate) fn cluster_counters(&self) -> Option<Arc<ClusterCounters>> {
        match self {
            ItemStore::ClusterFp32 { client, .. } => Some(client.counters()),
            ItemStore::ClusterInt8 { client, .. } => Some(client.counters()),
            _ => None,
        }
    }

    /// The home shard of one request's history (shard-aware batching): the shard owning
    /// most of its rows, ties toward the lower shard id. Matches
    /// [`ShardPlan::home_shard`] on cluster stores so request groups land where their
    /// sub-batches would route anyway.
    fn home_shard(&self, history: &[u32]) -> usize {
        fn majority(shards: impl Iterator<Item = usize>, num_shards: usize) -> usize {
            let mut counts = vec![0u64; num_shards.max(1)];
            let last = counts.len() - 1;
            for shard in shards {
                counts[shard.min(last)] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
                .map(|(shard, _)| shard)
                .unwrap_or(0)
        }
        match self {
            ItemStore::Fp32 { shards, .. } => majority(
                history.iter().map(|&row| shards.shard_of(row)),
                shards.num_shards(),
            ),
            ItemStore::Int8 { shards, .. } => majority(
                history.iter().map(|&row| shards.shard_of(row)),
                shards.num_shards(),
            ),
            ItemStore::ClusterFp32 { client, .. } => {
                client.plan().home_shard(history.iter().copied())
            }
            ItemStore::ClusterInt8 { client, .. } => {
                client.plan().home_shard(history.iter().copied())
            }
        }
    }

    /// Pool every request's history into a dense f32 profile (`batch.len() × dim`).
    /// Returns the row ids the source degraded to zero-filled lookups (empty outside
    /// a faulted cluster). `trace`, when set, captures the fetch window and the
    /// router's per-sub-request events for the batch; `None` leaves the pooling path
    /// byte-identical to the untraced engine.
    fn pool_dense(
        &mut self,
        batch: &PoolingBatch,
        dense: &mut [f32],
        trace: Option<&mut PoolTrace>,
    ) -> Result<Vec<u32>, ServeError> {
        match self {
            ItemStore::Fp32 { shards, cache } => pool_profiles(shards, cache, batch, dense, trace),
            ItemStore::ClusterFp32 { client, cache } => {
                pool_profiles(client, cache, batch, dense, trace)
            }
            ItemStore::Int8 {
                shards,
                cache,
                params,
            } => pool_dense_int8(shards, cache, *params, batch, dense, trace),
            ItemStore::ClusterInt8 {
                client,
                cache,
                params,
            } => pool_dense_int8(client, cache, *params, batch, dense, trace),
        }
    }
}

/// The int8 variant of dense pooling: pool quantized profiles, then dequantize into
/// the model's f32 input.
fn pool_dense_int8<S: RowSource<i8>>(
    source: &mut S,
    cache: &mut HotRowCache<i8>,
    params: QuantizationParams,
    batch: &PoolingBatch,
    dense: &mut [f32],
    trace: Option<&mut PoolTrace>,
) -> Result<Vec<u32>, ServeError> {
    let mut profiles = vec![0i8; batch.len() * source.dim()];
    let missing = pool_profiles(source, cache, batch, &mut profiles, trace)?;
    if dense.len() != profiles.len() {
        return Err(ServeError::ShapeMismatch {
            what: "dense profile buffer",
            expected: profiles.len(),
            actual: dense.len(),
        });
    }
    for (out, &quantized) in dense.iter_mut().zip(profiles.iter()) {
        *out = params.dequantize(quantized);
    }
    Ok(missing)
}

/// Pool a CSR batch through the cache and a row source (in-process shards or the
/// cluster router): probe the cache per lookup in flat order (copying hits into a
/// staging buffer), coalesce repeated misses of one row onto a single in-flight fetch,
/// fetch the unique misses from the source, insert the fetched rows into the cache,
/// then sum-pool each request from the staging buffer in request order.
///
/// Accumulation order is always the request's index order, and cached rows are exact
/// copies of source rows, so the pooled profiles are bit-identical with the cache on,
/// off, or at any capacity — and identical across the single-node and cluster sources.
///
/// Returns the rows the source reported missing (zero-filled by a degraded cluster).
/// A missing row contributes zero to its pools and is **never** admitted to the cache:
/// degradation must stay transient, not poison future batches after the shard recovers.
fn pool_profiles<T: Lane, S: RowSource<T>>(
    source: &mut S,
    cache: &mut HotRowCache<T>,
    batch: &PoolingBatch,
    profiles: &mut [T],
    mut trace: Option<&mut PoolTrace>,
) -> Result<Vec<u32>, ServeError> {
    let dim = source.dim();
    if profiles.len() != batch.len() * dim {
        return Err(ServeError::ShapeMismatch {
            what: "pooled profile buffer",
            expected: batch.len() * dim,
            actual: profiles.len(),
        });
    }
    if cache.capacity() == 0 && !source.node_cached() {
        // Disabled-cache fast path: pool straight off the source, zero cache probes.
        // Counted as all-miss so hit-rate reporting stays comparable across configs.
        // Sources with per-shard-node caches skip this: they still want the router's
        // capacity-0 cache as the miss-coalescing ledger, so each unique row is
        // fetched (and counted at the nodes) exactly once per batch.
        if let Some(trace) = trace.as_deref_mut() {
            trace.misses = batch.total_lookups() as u64;
            trace.fetch_begin_us = trace.clock.now_us();
            source.trace_arm(&trace.clock);
        }
        source.pool_direct(batch, profiles)?;
        if let Some(trace) = trace.as_deref_mut() {
            trace.fetch_end_us = trace.clock.now_us();
            trace.node_spans = source.trace_drain_node_spans();
            trace.events = source.trace_drain();
        }
        cache.record_misses(batch.total_lookups() as u64);
        return Ok(source.take_missing());
    }
    source.check_indices(batch.indices())?;
    let mut staging: Vec<T> = vec![T::default(); batch.total_lookups() * dim];
    let mut fetched: Vec<(u32, usize)> = Vec::new();
    // `(destination, source)` staging positions of lookups coalesced onto an earlier
    // fetch of the same row in this batch (a flight table: one fetch per unique row).
    let mut coalesced: Vec<(usize, usize)> = Vec::new();
    {
        let mut in_flight: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut misses: Vec<(u32, &mut [T])> = Vec::new();
        for ((position, &row), chunk) in batch
            .indices()
            .iter()
            .enumerate()
            .zip(staging.chunks_mut(dim))
        {
            match cache.lookup(row) {
                Some(data) => chunk.copy_from_slice(data),
                None => match in_flight.entry(row) {
                    std::collections::hash_map::Entry::Occupied(entry) => {
                        cache.coalesce_last_miss();
                        coalesced.push((position, *entry.get()));
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        entry.insert(position);
                        fetched.push((row, position));
                        misses.push((row, chunk));
                    }
                },
            }
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.fetch_begin_us = trace.clock.now_us();
            source.trace_arm(&trace.clock);
        }
        source.fetch_rows(misses)?;
    }
    if let Some(trace) = trace {
        trace.fetch_end_us = trace.clock.now_us();
        trace.node_spans = source.trace_drain_node_spans();
        trace.events = source.trace_drain();
        trace.misses = fetched.len() as u64;
        trace.coalesced = coalesced.len() as u64;
        trace.hits = batch.total_lookups() as u64 - trace.misses - trace.coalesced;
    }
    let missing = source.take_missing();
    for &(destination, source) in &coalesced {
        staging.copy_within(source * dim..(source + 1) * dim, destination * dim);
    }
    // Admit the fetched rows, in lookup order so CLOCK state stays deterministic —
    // except rows a degraded cluster zero-filled, which must not be cached.
    if missing.is_empty() {
        for &(row, position) in &fetched {
            cache.insert(row, &staging[position * dim..(position + 1) * dim]);
        }
    } else {
        let degraded: std::collections::HashSet<u32> = missing.iter().copied().collect();
        for &(row, position) in &fetched {
            if !degraded.contains(&row) {
                cache.insert(row, &staging[position * dim..(position + 1) * dim]);
            }
        }
    }
    crate::shard::pool_from_staging(&staging, dim, batch.offsets(), profiles);
    Ok(missing)
}

/// The serving engine: model + item store + TCAM filter + telemetry.
#[derive(Debug, Clone)]
pub struct ServeEngine {
    model: Dlrm,
    store: ItemStore,
    lsh: RandomHyperplaneLsh,
    tcam: CmaArray,
    config: ServeConfig,
    telemetry: ServeTelemetry,
    tracer: Option<Tracer>,
    /// The live metrics plane, armed by [`ServeEngine::enable_metrics`]: buckets
    /// arrivals / completions / latencies / faults into fixed event-time windows.
    /// Per-clone state — the threaded runtime merges its workers' scrapers.
    metrics: Option<MetricsScraper>,
}

impl ServeEngine {
    /// Build an engine serving `model` over the item catalogue `items` (one embedding
    /// row per item; row order is popularity rank for the synthetic catalogues).
    ///
    /// The DLRM dense input is the pooled item profile, so
    /// `model.config().num_dense_features` must equal `items.dim()`. The TCAM is loaded
    /// with the LSH signature of every item row at construction (signatures are computed
    /// from the full-precision rows in both precisions, mirroring offline signature
    /// generation).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for mismatched dimensions or a zero
    /// signature width, and propagates shard/LSH construction errors.
    pub fn new(
        model: Dlrm,
        items: &EmbeddingTable,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        let (lsh, tcam) = Self::build_filter(&model, items, &config)?;
        let store = match config.precision {
            ServePrecision::Fp32 => {
                let mut shards = shard_embedding(items, config.shards)?;
                shards.install_node_caches(
                    config.node_cache_capacity(shards.num_shards()),
                    config.cache_policy,
                );
                ItemStore::Fp32 {
                    cache: HotRowCache::with_policy(
                        config.router_cache_capacity(),
                        items.dim(),
                        config.cache_policy,
                    ),
                    shards,
                }
            }
            ServePrecision::Int8 => {
                // Quantize once, then move the buffer straight into the shared arena:
                // the sharded view aliases that single allocation, no per-shard copies.
                let (arena, params) = QuantizedTable::from_table(items).into_arena();
                let mut shards = ShardedTable::from_arena(arena, config.shards)?;
                shards.install_node_caches(
                    config.node_cache_capacity(shards.num_shards()),
                    config.cache_policy,
                );
                ItemStore::Int8 {
                    params,
                    cache: HotRowCache::with_policy(
                        config.router_cache_capacity(),
                        items.dim(),
                        config.cache_policy,
                    ),
                    shards,
                }
            }
        };
        Ok(Self {
            model,
            store,
            lsh,
            tcam,
            config,
            telemetry: ServeTelemetry::default(),
            tracer: None,
            metrics: None,
        })
    }

    /// Build an engine whose catalogue lives on a multi-node shard cluster instead of
    /// the in-process table: each shard node owns a partition (placed by
    /// `cluster.placement`, optionally informed by an access `histogram` — required for
    /// frequency placement) behind its own bounded queue and worker threads, and every
    /// cross-shard row fetch is charged to the RSC bus next to the GPCiM cost.
    ///
    /// The returned [`ClusterHandle`] owns the shard node threads — keep it alive while
    /// the engine (or any clone of it) serves, and call
    /// [`shutdown`](ClusterHandle::shutdown) to join them. Ranked outputs are
    /// bit-identical to the single-node engine over the same catalogue and trace.
    ///
    /// # Errors
    ///
    /// As for [`ServeEngine::new`], plus [`ServeError::InvalidConfig`] for a bad
    /// cluster shape or a frequency placement without a histogram.
    pub fn new_clustered(
        model: Dlrm,
        items: &EmbeddingTable,
        config: ServeConfig,
        cluster: &ClusterConfig,
        histogram: Option<&[u64]>,
    ) -> Result<(Self, ClusterHandle), ServeError> {
        Self::new_clustered_with(
            model,
            items,
            config,
            cluster,
            histogram,
            ClusterOptions::default(),
        )
    }

    /// [`ServeEngine::new_clustered`] with [`ClusterOptions`]: chaos fault injection
    /// into the shard nodes and/or an injected clock for the router's resilient path.
    ///
    /// # Errors
    ///
    /// As for [`ServeEngine::new_clustered`].
    pub fn new_clustered_with(
        model: Dlrm,
        items: &EmbeddingTable,
        config: ServeConfig,
        cluster: &ClusterConfig,
        histogram: Option<&[u64]>,
        options: ClusterOptions,
    ) -> Result<(Self, ClusterHandle), ServeError> {
        cluster.validate()?;
        let (lsh, tcam) = Self::build_filter(&model, items, &config)?;
        let plan = ShardPlan::build(
            items.rows(),
            cluster.shards,
            cluster.placement,
            cluster.hot_replicas,
            histogram,
        )?;
        let mut options = options;
        options.node_cache = config.node_cache_config(plan.num_shards());
        let (store, handle) = match config.precision {
            ServePrecision::Fp32 => {
                let arena = RowArena::from_rows(items.iter_rows(), items.dim())
                    .expect("embedding table rows are uniform");
                let (client, handle) = spawn_cluster_with(&arena, plan, cluster, options)?;
                (
                    ItemStore::ClusterFp32 {
                        client,
                        cache: HotRowCache::with_policy(
                            config.router_cache_capacity(),
                            items.dim(),
                            config.cache_policy,
                        ),
                    },
                    handle,
                )
            }
            ServePrecision::Int8 => {
                let (arena, params) = QuantizedTable::from_table(items).into_arena();
                let (client, handle) = spawn_cluster_with(&arena, plan, cluster, options)?;
                (
                    ItemStore::ClusterInt8 {
                        client,
                        cache: HotRowCache::with_policy(
                            config.router_cache_capacity(),
                            items.dim(),
                            config.cache_policy,
                        ),
                        params,
                    },
                    handle,
                )
            }
        };
        Ok((
            Self {
                model,
                store,
                lsh,
                tcam,
                config,
                telemetry: ServeTelemetry::default(),
                tracer: None,
                metrics: None,
            },
            handle,
        ))
    }

    /// A clustered engine whose shards are separate *processes*: each socket path must
    /// have a [`run_shard_node`](crate::transport::run_shard_node) listening on it. The
    /// router pushes every shard its row partition over the wire (a `LOAD` frame), so
    /// the nodes themselves start empty. Fault-free, the results are bit-identical to
    /// [`ServeEngine::new_clustered`] — `serve_replay --transport uds` asserts exactly
    /// that.
    ///
    /// # Errors
    ///
    /// [`ServeError::TransportClosed`] when a node cannot be reached, plus everything
    /// [`ServeEngine::new_clustered`] returns.
    pub fn new_clustered_sockets(
        model: Dlrm,
        items: &EmbeddingTable,
        config: ServeConfig,
        cluster: &ClusterConfig,
        histogram: Option<&[u64]>,
        sockets: &[std::path::PathBuf],
        options: ClusterOptions,
    ) -> Result<(Self, ClusterHandle), ServeError> {
        cluster.validate()?;
        let (lsh, tcam) = Self::build_filter(&model, items, &config)?;
        let plan = ShardPlan::build(
            items.rows(),
            cluster.shards,
            cluster.placement,
            cluster.hot_replicas,
            histogram,
        )?;
        let mut options = options;
        options.node_cache = config.node_cache_config(plan.num_shards());
        let (store, handle) = match config.precision {
            ServePrecision::Fp32 => {
                let arena = RowArena::from_rows(items.iter_rows(), items.dim())
                    .expect("embedding table rows are uniform");
                let (client, handle) = connect_cluster(&arena, plan, cluster, sockets, options)?;
                (
                    ItemStore::ClusterFp32 {
                        client,
                        cache: HotRowCache::with_policy(
                            config.router_cache_capacity(),
                            items.dim(),
                            config.cache_policy,
                        ),
                    },
                    handle,
                )
            }
            ServePrecision::Int8 => {
                let (arena, params) = QuantizedTable::from_table(items).into_arena();
                let (client, handle) = connect_cluster(&arena, plan, cluster, sockets, options)?;
                (
                    ItemStore::ClusterInt8 {
                        client,
                        cache: HotRowCache::with_policy(
                            config.router_cache_capacity(),
                            items.dim(),
                            config.cache_policy,
                        ),
                        params,
                    },
                    handle,
                )
            }
        };
        Ok((
            Self {
                model,
                store,
                lsh,
                tcam,
                config,
                telemetry: ServeTelemetry::default(),
                tracer: None,
                metrics: None,
            },
            handle,
        ))
    }

    /// The candidate-filtering stage shared by both constructors: the LSH hasher plus a
    /// TCAM loaded with every item row's signature.
    fn build_filter(
        model: &Dlrm,
        items: &EmbeddingTable,
        config: &ServeConfig,
    ) -> Result<(RandomHyperplaneLsh, CmaArray), ServeError> {
        if model.config().num_dense_features != items.dim() {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "the DLRM dense input is the pooled item profile: num_dense_features ({}) must equal the item embedding dim ({})",
                    model.config().num_dense_features,
                    items.dim()
                ),
            });
        }
        let lsh = RandomHyperplaneLsh::new(items.dim(), config.signature_bits, config.lsh_seed)?;
        let mut tcam = CmaArray::new(
            items.rows(),
            config.signature_bits,
            ArrayFom::paper_reference(),
        );
        for row in 0..items.rows() {
            let signature = lsh.signature(items.lookup(row)?)?;
            tcam.write_row_bits(row, &signature, config.signature_bits)?;
        }
        Ok((lsh, tcam))
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of items in the catalogue.
    pub fn num_items(&self) -> usize {
        self.tcam.rows()
    }

    /// Number of embedding shards actually created (may be fewer than requested for a
    /// small catalogue).
    pub fn num_shards(&self) -> usize {
        self.store.num_shards()
    }

    /// Bytes of item-row storage resident in the engine's shared arena — the
    /// memory-accounting figure the paper-scale study reports. `None` when the
    /// catalogue lives on a cluster's shard nodes rather than in-process.
    pub fn catalogue_resident_bytes(&self) -> Option<usize> {
        match &self.store {
            ItemStore::Fp32 { shards, .. } => Some(shards.arena().resident_bytes()),
            ItemStore::Int8 { shards, .. } => Some(shards.arena().resident_bytes()),
            ItemStore::ClusterFp32 { .. } | ItemStore::ClusterInt8 { .. } => None,
        }
    }

    /// Cache counters accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.cache_stats()
    }

    /// Shard-cluster counters (None when serving from the in-process table).
    pub fn cluster_stats(&self) -> Option<ClusterStats> {
        self.store.cluster_stats()
    }

    pub(crate) fn cluster_counters(&self) -> Option<Arc<ClusterCounters>> {
        self.store.cluster_counters()
    }

    /// Serving counters accumulated so far.
    pub fn telemetry(&self) -> &ServeTelemetry {
        &self.telemetry
    }

    /// Zero the telemetry and cache counters (resident cache rows are kept). The replay
    /// drivers call this at the start of a run; the threaded runtime calls it on each
    /// worker's engine clone so per-worker counters start from zero.
    pub fn reset_stats(&mut self) {
        self.telemetry = ServeTelemetry::default();
        self.store.reset_cache_stats();
        if let Some(tracer) = &mut self.tracer {
            tracer.reset();
        }
        if let Some(scraper) = &mut self.metrics {
            let config = MetricsConfig {
                interval_us: scraper.interval_us(),
            };
            *scraper = MetricsScraper::new(&config, self.store.num_shards());
        }
    }

    /// Arm the live metrics plane: every subsequent replay buckets arrivals,
    /// completions, latencies, router-cache traffic and per-shard fault deltas into
    /// fixed event-time windows of `config.interval_us`, reported as
    /// [`ServeReport::metrics`]. Windowing is by *event time*, so the resulting
    /// series is byte-identical across worker counts on a frozen manual clock.
    pub fn enable_metrics(&mut self, config: MetricsConfig) {
        self.metrics = Some(MetricsScraper::new(&config, self.store.num_shards()));
    }

    /// Whether [`ServeEngine::enable_metrics`] armed the metrics plane.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Take this clone's scraper (the threaded runtime collects one per worker and
    /// merges them window-wise). `None` when metrics are off.
    pub(crate) fn take_metrics(&mut self) -> Option<MetricsScraper> {
        self.metrics.take()
    }

    /// The router-cache marker to diff a batch's cache traffic against —
    /// `None` (free) when metrics are off.
    pub(crate) fn metrics_cache_marker(&self) -> Option<CacheStats> {
        self.metrics
            .as_ref()
            .map(|_| self.store.router_cache_stats())
    }

    /// Record one served batch on the metrics plane: `arrivals` are the batch's
    /// request arrival stamps, `latencies` the per-request end-to-end latencies, and
    /// `marker` the pre-batch cache marker from
    /// [`ServeEngine::metrics_cache_marker`]. No-op when metrics are off.
    pub(crate) fn record_metrics_batch(
        &mut self,
        marker: Option<CacheStats>,
        arrivals: &[f64],
        completed_us: f64,
        latencies: &[f64],
    ) {
        let Some(before) = marker else { return };
        let after = self.store.router_cache_stats();
        let faults = self.store.take_fault_deltas();
        let Some(scraper) = &mut self.metrics else {
            return;
        };
        for &at_us in arrivals {
            scraper.record_arrival(at_us);
        }
        scraper.record_batch(
            completed_us,
            latencies,
            after.hits.saturating_sub(before.hits),
            after.misses.saturating_sub(before.misses),
            &faults,
        );
    }

    /// Turn on per-query tracing with `config` (a `sample_every` of 0 turns it off
    /// again). Sampled queries get full span trees in
    /// [`ReplayOutcome::trace`], per-stage histograms land in
    /// [`ServeTelemetry::stages`](crate::telemetry::ServeTelemetry::stages), and
    /// untraced batches run the exact untraced code path — with sampling off, outputs
    /// and counters are bit-identical to an engine that never traced.
    pub fn enable_tracing(&mut self, config: TraceConfig) {
        self.tracer = config.enabled().then(|| Tracer::new(config));
    }

    /// The active tracing configuration, if tracing is enabled.
    pub fn trace_config(&self) -> Option<TraceConfig> {
        self.tracer.as_ref().map(Tracer::config)
    }

    /// Put the tracer's spans on `clock` (the threaded runtime injects its own clock
    /// so trace timestamps share the queue/latency timeline).
    pub(crate) fn set_trace_clock(&mut self, clock: Arc<dyn Clock>) {
        if let Some(tracer) = &mut self.tracer {
            tracer.set_clock(clock);
        }
    }

    /// Take the accumulated trace log (empty when tracing is off).
    pub(crate) fn take_trace_log(&mut self) -> TraceLog {
        self.tracer
            .as_mut()
            .map(Tracer::take_log)
            .unwrap_or_default()
    }

    /// Finalize the last traced batch on the measured timeline (the threaded path):
    /// `queries` pairs each request id with its submit stamp and `end_us` is the
    /// measured completion, all on the runtime's injected clock.
    pub(crate) fn finalize_trace(&mut self, queries: &[(u64, f64)], trigger_us: f64, end_us: f64) {
        if let Some(tracer) = &mut self.tracer {
            tracer.finalize_batch(
                queries,
                trigger_us,
                None,
                end_us,
                &mut self.telemetry.stages,
            );
        }
    }

    /// Pool the batch's profiles, grouping requests by home shard first when
    /// [`ServeConfig::shard_batching`] is on: each group pools as its own sub-batch, so
    /// its row fetch routes overwhelmingly to one shard node and the cross-shard hops
    /// of the whole group amortize into that single sub-request. Profiles land at each
    /// request's original offset and per-request pooling is untouched, so responses are
    /// bit-identical to the ungrouped path — only fan-out and cache counters move.
    fn pool_batch_dense(
        &mut self,
        requests: &[ServeRequest],
        batch: &PoolingBatch,
        dense: &mut [f32],
        mut pool_trace: Option<&mut PoolTrace>,
    ) -> Result<Vec<u32>, ServeError> {
        if !self.config.shard_batching || self.store.num_shards() <= 1 {
            return self
                .store
                .pool_dense(batch, dense, pool_trace.as_deref_mut());
        }
        let dense_dim = self.model.config().num_dense_features;
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.store.num_shards()];
        for (index, request) in requests.iter().enumerate() {
            groups[self.store.home_shard(&request.history)].push(index);
        }
        let mut missing = Vec::new();
        let mut first_fetch = true;
        for group in groups.iter().filter(|group| !group.is_empty()) {
            let histories: Vec<&[u32]> = group
                .iter()
                .map(|&index| requests[index].history.as_slice())
                .collect();
            let sub_batch = PoolingBatch::from_requests(&histories);
            let mut sub_dense = vec![0.0f32; group.len() * dense_dim];
            let mut sub_trace = pool_trace
                .as_ref()
                .map(|trace| PoolTrace::new(trace.clock.clone()));
            missing.extend(self.store.pool_dense(
                &sub_batch,
                &mut sub_dense,
                sub_trace.as_mut(),
            )?);
            if let (Some(trace), Some(sub)) = (pool_trace.as_deref_mut(), sub_trace) {
                if first_fetch {
                    trace.fetch_begin_us = sub.fetch_begin_us;
                    first_fetch = false;
                }
                trace.fetch_end_us = sub.fetch_end_us;
                trace.hits += sub.hits;
                trace.misses += sub.misses;
                trace.coalesced += sub.coalesced;
                trace.events.extend(sub.events);
                trace.node_spans.extend(sub.node_spans);
            }
            for (&index, profile) in group.iter().zip(sub_dense.chunks(dense_dim)) {
                dense[index * dense_dim..(index + 1) * dense_dim].copy_from_slice(profile);
            }
        }
        // One batch can report a missing row once per group; collapse to the
        // ungrouped contract of unique rows.
        missing.sort_unstable();
        missing.dedup();
        Ok(missing)
    }

    /// Execute one coalesced batch through pooling, filtering and ranking. Responses are
    /// in request order with `latency_us` zero (the replay driver fills latencies from
    /// its clock).
    ///
    /// # Errors
    ///
    /// Returns an error if any history row is outside the catalogue or any sample shape
    /// does not fit the model.
    pub fn process_batch(
        &mut self,
        requests: &[ServeRequest],
    ) -> Result<Vec<ServeResponse>, ServeError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let dense_dim = self.model.config().num_dense_features;
        let histories: Vec<&[u32]> = requests.iter().map(|r| r.history.as_slice()).collect();
        let batch = PoolingBatch::from_requests(&histories);

        // Per-batch trace gate: only a batch containing a sampled query pays any
        // tracing work — every other batch takes the exact untraced code path.
        let mut pool_trace = match &self.tracer {
            Some(tracer) if tracer.wants(requests.iter().map(|r| r.id)) => {
                Some(PoolTrace::new(tracer.clock()))
            }
            _ => None,
        };
        let pool_begin_us = pool_trace.as_ref().map(|t| t.clock.now_us());

        // 1. Profile pooling through cache + shards, with the GPCiM charge: one CMA RAM
        //    read per cache miss (hits are served from the buffer next to the compute),
        //    one in-memory add per accumulated row beyond each request's first.
        let misses_before = self.store.cache_stats().misses;
        let mut dense = vec![0.0f32; requests.len() * dense_dim];
        let missing = self.pool_batch_dense(requests, &batch, &mut dense, pool_trace.as_mut())?;
        let pool_end_us = pool_trace.as_ref().map(|t| t.clock.now_us());
        if !missing.is_empty() {
            // Degraded-mode accounting: every zero-filled row, and every query whose
            // pooled history touched one, is visible in the replay report.
            self.telemetry.missing_row_lookups += missing.len() as u64;
            let degraded: std::collections::HashSet<u32> = missing.iter().copied().collect();
            for i in 0..batch.len() {
                if batch.request(i).iter().any(|row| degraded.contains(row)) {
                    self.telemetry.degraded_queries += 1;
                }
            }
        }
        let misses = self
            .store
            .cache_stats()
            .misses
            .saturating_sub(misses_before) as usize;
        let read = Cost::from_fom(self.tcam.fom().cma.read);
        let add = Cost::from_fom(self.tcam.fom().cma.add);
        let adds: usize = (0..batch.len())
            .map(|i| batch.request(i).len().saturating_sub(1))
            .sum();
        self.telemetry
            .cost
            .charge(CostComponent::CmaRead, read.repeat(misses));
        self.telemetry
            .cost
            .charge(CostComponent::CmaAdd, add.repeat(adds));
        self.telemetry.total_cost += read.repeat(misses).serial(add.repeat(adds));
        // Cross-shard fetches pay the RSC bus (multi-node stores only).
        let (interconnect, interconnect_breakdown) = self.store.take_interconnect();
        if interconnect != Cost::ZERO {
            self.telemetry.cost.merge(&interconnect_breakdown);
            self.telemetry.total_cost += interconnect;
        }

        // 2. Candidate filtering: LSH signatures matched in TCAM mode, one serialized
        //    search per query.
        let signatures = dense
            .chunks(dense_dim)
            .map(|profile| self.lsh.signature(profile))
            .collect::<Result<Vec<_>, _>>()?;
        let search = self
            .tcam
            .search_batch(&signatures, self.config.search_radius)?;
        let filter_end_us = pool_trace.as_ref().map(|t| t.clock.now_us());
        self.telemetry.cost.merge(&search.breakdown);
        self.telemetry.total_cost += search.cost;

        // 3. Ranking: the profile is the dense input of the DLRM sample.
        let samples: Vec<DlrmSample> = requests
            .iter()
            .zip(dense.chunks(dense_dim))
            .map(|(request, profile)| DlrmSample {
                dense: profile.to_vec(),
                sparse: request.sparse.clone(),
            })
            .collect();
        let scores = self.model.predict_batch(&samples)?;
        if let Some(pool) = pool_trace.take() {
            let scratch = BatchScratch {
                pool_begin_us: pool_begin_us.unwrap_or(0.0),
                pool_end_us: pool_end_us.unwrap_or(0.0),
                filter_end_us: filter_end_us.unwrap_or(0.0),
                rank_end_us: pool.clock.now_us(),
                fetch_begin_us: pool.fetch_begin_us,
                fetch_end_us: pool.fetch_end_us,
                hits: pool.hits,
                misses: pool.misses,
                coalesced: pool.coalesced,
                events: pool.events,
                node_spans: pool.node_spans,
            };
            self.tracer
                .as_mut()
                .expect("pool trace implies a tracer")
                .stash(scratch);
        }

        self.telemetry.queries += requests.len() as u64;
        self.telemetry.batches += 1;
        self.telemetry.batch_size_sum += requests.len() as u64;
        let responses = requests
            .iter()
            .zip(scores)
            .zip(search.value)
            .map(|((request, score), matches)| {
                let candidates = matches.len().min(request.query.candidates);
                self.telemetry.candidates_sum += candidates as u64;
                ServeResponse {
                    id: request.id,
                    score,
                    candidates,
                    latency_us: 0.0,
                }
            })
            .collect();
        Ok(responses)
    }

    /// Replay a timed trace through the dynamic batcher and the engine.
    ///
    /// Timing is a discrete-event simulation: batches flush on the trace's virtual clock
    /// (size or deadline, see [`BatchPolicy`]), the engine serves one batch at a time,
    /// and each batch's service time is measured on the real machine. A request's
    /// latency is its batch's completion time minus its arrival. Telemetry and cache
    /// statistics are reset at the start (resident cache rows are kept — replaying twice
    /// on one engine starts the second run warm; use a fresh engine for cold-start
    /// numbers).
    ///
    /// # Errors
    ///
    /// As for [`ServeEngine::process_batch`].
    pub fn replay(&mut self, workload: &ReplayWorkload) -> Result<ReplayOutcome, ServeError> {
        self.reset_stats();
        let mut batcher: DynamicBatcher<ServeRequest> = DynamicBatcher::new(self.config.policy);
        let mut engine_free_us = 0.0f64;
        let mut responses = Vec::with_capacity(workload.len());
        for request in workload.requests() {
            let arrival_us = request.arrival_us;
            if let Some(batch) = batcher.poll(arrival_us) {
                self.serve_flushed(batch, &mut engine_free_us, &mut responses)?;
            }
            if let Some(batch) = batcher.offer(request.clone(), arrival_us) {
                self.serve_flushed(batch, &mut engine_free_us, &mut responses)?;
            }
        }
        if let Some(deadline_us) = batcher.deadline_us() {
            // The remainder would have flushed at its deadline; drain it there.
            let batch = batcher
                .drain(deadline_us)
                .expect("pending batch has a deadline");
            self.serve_flushed(batch, &mut engine_free_us, &mut responses)?;
        }
        let report = ServeReport {
            name: "serve_replay".to_string(),
            policy: self.config.policy,
            shards: self.store.num_shards(),
            cache_capacity: self.config.cache_capacity,
            cache_policy: self.config.cache_policy.label().to_string(),
            cache_placement: self.config.cache_placement.label().to_string(),
            telemetry: self.telemetry.clone(),
            cache: self.store.cache_stats(),
            runtime: None,
            cluster: self.store.cluster_stats(),
            metrics: self.metrics.as_ref().map(MetricsScraper::series),
        };
        let trace = self.take_trace_log();
        Ok(ReplayOutcome {
            responses,
            report,
            trace,
        })
    }

    fn serve_flushed(
        &mut self,
        batch: FlushedBatch<ServeRequest>,
        engine_free_us: &mut f64,
        out: &mut Vec<ServeResponse>,
    ) -> Result<(), ServeError> {
        let start_us = engine_free_us.max(batch.trigger_us);
        let marker = self.metrics_cache_marker();
        let started = Instant::now();
        let mut responses = self.process_batch(&batch.requests)?;
        let service_us = started.elapsed().as_secs_f64() * 1e6;
        let completion_us = start_us + service_us;
        *engine_free_us = completion_us;
        self.telemetry.busy_us += service_us;
        self.telemetry.makespan_us = completion_us;
        if marker.is_some() {
            let arrivals: Vec<f64> = batch.requests.iter().map(|r| r.arrival_us).collect();
            let latencies: Vec<f64> = arrivals.iter().map(|&at| completion_us - at).collect();
            self.record_metrics_batch(marker, &arrivals, completion_us, &latencies);
        }
        if let Some(tracer) = &mut self.tracer {
            // Re-anchor the batch's measured stage marks onto the virtual timeline:
            // pooling starts at the simulated service start.
            let queries: Vec<(u64, f64)> = batch
                .requests
                .iter()
                .map(|request| (request.id, request.arrival_us))
                .collect();
            tracer.finalize_batch(
                &queries,
                batch.trigger_us,
                Some(start_us),
                completion_us,
                &mut self.telemetry.stages,
            );
        }
        for (response, request) in responses.iter_mut().zip(batch.requests.iter()) {
            response.latency_us = completion_us - request.arrival_us;
            self.telemetry.latency.record(response.latency_us);
        }
        out.append(&mut responses);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplayConfig;
    use imars_recsys::dlrm::DlrmConfig;

    const ITEM_DIM: usize = 4;
    const NUM_ITEMS: usize = 1024;

    fn tiny_model() -> Dlrm {
        // DlrmConfig::tiny has num_dense_features = 4 = ITEM_DIM.
        Dlrm::new(DlrmConfig::tiny()).unwrap()
    }

    fn items() -> EmbeddingTable {
        EmbeddingTable::new(NUM_ITEMS, ITEM_DIM, 99).unwrap()
    }

    fn config(cache_capacity: usize, precision: ServePrecision) -> ServeConfig {
        ServeConfig {
            shards: 4,
            cache_capacity,
            cache_policy: CachePolicy::Clock,
            cache_placement: CachePlacement::Router,
            shard_batching: false,
            precision,
            policy: BatchPolicy::new(32, 300.0).unwrap(),
            signature_bits: 64,
            search_radius: 27,
            lsh_seed: 7,
        }
    }

    fn engine(cache_capacity: usize, precision: ServePrecision) -> ServeEngine {
        ServeEngine::new(tiny_model(), &items(), config(cache_capacity, precision)).unwrap()
    }

    fn replay_config(queries: usize) -> ReplayConfig {
        ReplayConfig {
            queries,
            num_users: 200,
            num_items: NUM_ITEMS,
            zipf_exponent: 1.2,
            history_len: 16,
            offered_qps: 100_000.0,
            candidates_per_query: 100,
            top_k: 10,
            sparse_cardinalities: DlrmConfig::tiny().sparse_cardinalities,
            seed: 2024,
            item_permutation_seed: None,
        }
    }

    #[test]
    fn construction_validates_dimensions() {
        let wrong_dim = EmbeddingTable::new(64, ITEM_DIM + 1, 0).unwrap();
        assert!(matches!(
            ServeEngine::new(tiny_model(), &wrong_dim, config(8, ServePrecision::Fp32)),
            Err(ServeError::InvalidConfig { .. })
        ));
        let engine = engine(8, ServePrecision::Fp32);
        assert_eq!(engine.num_items(), NUM_ITEMS);
        assert_eq!(engine.config().shards, 4);
    }

    #[test]
    fn cached_and_uncached_replays_match_bit_for_bit() {
        let workload = ReplayWorkload::generate(&replay_config(2000)).unwrap();
        for precision in [ServePrecision::Fp32, ServePrecision::Int8] {
            let cached = engine(128, precision).replay(&workload).unwrap();
            let uncached = engine(0, precision).replay(&workload).unwrap();
            assert_eq!(cached.responses.len(), 2000);
            assert_eq!(uncached.responses.len(), 2000);
            for (a, b) in cached.responses.iter().zip(uncached.responses.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "query {} ({precision:?})",
                    a.id
                );
                assert_eq!(a.candidates, b.candidates, "query {} ({precision:?})", a.id);
            }
            // The cache changes the modeled energy (fewer CMA reads), not the results.
            assert!(cached.report.cache.hit_rate() > 0.0);
            assert_eq!(uncached.report.cache.hits, 0);
            assert!(
                cached.report.telemetry.total_cost.energy_pj
                    < uncached.report.telemetry.total_cost.energy_pj
            );
        }
    }

    #[test]
    fn zipf_skew_yields_majority_hit_rate() {
        // The acceptance shape: ≥ 10k queries at exponent 1.2 through the sharded +
        // cached engine, cache capacity an eighth of the catalogue.
        let workload = ReplayWorkload::generate(&replay_config(10_000)).unwrap();
        let mut engine = engine(128, ServePrecision::Fp32);
        let outcome = engine.replay(&workload).unwrap();
        let hit_rate = outcome.report.cache.hit_rate();
        assert!(hit_rate > 0.5, "hit rate {hit_rate} at skew 1.2");
        assert_eq!(outcome.report.telemetry.queries, 10_000);
    }

    #[test]
    fn replay_produces_coherent_latency_and_throughput() {
        let workload = ReplayWorkload::generate(&replay_config(1500)).unwrap();
        let mut engine = engine(64, ServePrecision::Fp32);
        let outcome = engine.replay(&workload).unwrap();
        let t = &outcome.report.telemetry;
        assert_eq!(t.queries, 1500);
        assert!(t.batches > 0);
        assert!(t.mean_batch_size() <= 32.0 + 1e-9);
        let p50 = t.latency.quantile_us(0.50);
        let p95 = t.latency.quantile_us(0.95);
        let p99 = t.latency.quantile_us(0.99);
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99 && p99 <= t.latency.max_us());
        assert!(t.served_qps() > 0.0);
        assert!(t.busy_us > 0.0);
        assert!(t.makespan_us >= workload.requests().last().unwrap().arrival_us);
        // Every request is answered exactly once.
        let mut ids: Vec<u64> = outcome.responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..1500u64).collect::<Vec<_>>());
        // Candidate budgets are respected.
        assert!(outcome.responses.iter().all(|r| r.candidates <= 100));
    }

    #[test]
    fn process_batch_charges_the_gpcim_cost_model() {
        let mut engine = engine(0, ServePrecision::Fp32);
        let requests: Vec<ServeRequest> = (0..8)
            .map(|i| ServeRequest {
                id: i,
                arrival_us: 0.0,
                query: InferenceQuery {
                    user_index: i as usize,
                    candidates: 100,
                    top_k: 10,
                },
                history: vec![(i as u32) % 64, 3, 7],
                sparse: vec![1, 2, 3],
            })
            .collect();
        let responses = engine.process_batch(&requests).unwrap();
        assert_eq!(responses.len(), 8);
        let fom = ArrayFom::paper_reference();
        // Cache disabled: every lookup (8 × 3) is a miss => a CMA read; pooling three
        // rows costs two adds per request; one TCAM search per query.
        let telemetry = engine.telemetry();
        let expected_reads = Cost::from_fom(fom.cma.read).repeat(24);
        let expected_adds = Cost::from_fom(fom.cma.add).repeat(16);
        let expected_searches = Cost::from_fom(fom.cma.search).repeat(8);
        let reads = telemetry.cost.component(CostComponent::CmaRead);
        let adds = telemetry.cost.component(CostComponent::CmaAdd);
        let searches = telemetry.cost.component(CostComponent::CmaSearch);
        assert!((reads.energy_pj - expected_reads.energy_pj).abs() < 1e-9);
        assert!((adds.energy_pj - expected_adds.energy_pj).abs() < 1e-9);
        assert!((searches.energy_pj - expected_searches.energy_pj).abs() < 1e-9);
        let expected_total =
            expected_reads.energy_pj + expected_adds.energy_pj + expected_searches.energy_pj;
        assert!((telemetry.total_cost.energy_pj - expected_total).abs() < 1e-9);
        assert_eq!(telemetry.queries, 8);
        assert_eq!(telemetry.batches, 1);
    }

    #[test]
    fn process_batch_rejects_out_of_catalogue_history() {
        let mut engine = engine(8, ServePrecision::Fp32);
        let request = ServeRequest {
            id: 0,
            arrival_us: 0.0,
            query: InferenceQuery {
                user_index: 0,
                candidates: 10,
                top_k: 5,
            },
            history: vec![NUM_ITEMS as u32],
            sparse: vec![1, 2, 3],
        };
        assert!(matches!(
            engine.process_batch(&[request]),
            Err(ServeError::RowOutOfRange { .. })
        ));
        assert!(engine.process_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn traced_and_untraced_replays_are_bit_identical() {
        let workload = ReplayWorkload::generate(&replay_config(1200)).unwrap();
        for precision in [ServePrecision::Fp32, ServePrecision::Int8] {
            let plain = engine(64, precision).replay(&workload).unwrap();
            let mut traced_engine = engine(64, precision);
            traced_engine.enable_tracing(TraceConfig {
                sample_every: 4,
                seed: 42,
                capacity: 4096,
                slow_k: 4,
            });
            let traced = traced_engine.replay(&workload).unwrap();
            assert_eq!(plain.responses.len(), traced.responses.len());
            for (a, b) in plain.responses.iter().zip(traced.responses.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "query {}", a.id);
                assert_eq!(a.candidates, b.candidates);
            }
            // Counters are untouched by tracing: same cache traffic, same modeled cost.
            assert_eq!(plain.report.cache, traced.report.cache);
            assert_eq!(
                plain.report.telemetry.total_cost.energy_pj.to_bits(),
                traced.report.telemetry.total_cost.energy_pj.to_bits()
            );
            // The untraced run records nothing; the traced run sampled something.
            assert!(plain.trace.is_empty());
            assert_eq!(plain.trace.sampled(), 0);
            assert_eq!(plain.report.telemetry.stages.sampled, 0);
            assert!(traced.trace.sampled() > 0);
        }
        // sample_every = 0 disables the tracer entirely.
        let mut off = engine(64, ServePrecision::Fp32);
        off.enable_tracing(TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        });
        assert!(off.trace_config().is_none());
    }

    #[test]
    fn simulated_traces_nest_and_stage_counts_match_sampling() {
        use crate::trace::Stage;
        let workload = ReplayWorkload::generate(&replay_config(2000)).unwrap();
        let mut engine = engine(128, ServePrecision::Fp32);
        engine.enable_tracing(TraceConfig {
            sample_every: 8,
            seed: 7,
            capacity: 4096,
            slow_k: 8,
        });
        let outcome = engine.replay(&workload).unwrap();
        let stages = &outcome.report.telemetry.stages;
        let sampled = outcome.trace.sampled();
        assert!(sampled > 0);
        assert_eq!(stages.sampled, sampled);
        // Per-stage counts equal the sampled-query count, and the stage p50s nest
        // under the end-to-end p50 within histogram resolution (one log bucket ≈ 9%).
        let total_p50 = stages.total.quantile_us(0.5);
        for (name, histogram) in stages.stages() {
            assert_eq!(histogram.count(), sampled, "stage {name}");
            assert!(
                histogram.quantile_us(0.5) <= total_p50 * 1.1 + 1e-9,
                "stage {name} p50 {} above e2e p50 {total_p50}",
                histogram.quantile_us(0.5)
            );
        }
        assert_eq!(stages.total.count(), sampled);
        // Span trees nest inside each query's end-to-end window, in pipeline order.
        assert_eq!(outcome.trace.len() as u64, sampled);
        for trace in outcome.trace.traces() {
            assert!(outcome.responses.iter().any(|r| r.id == trace.id));
            assert_eq!(trace.spans.len(), 6);
            let batch_form = trace.span(Stage::BatchForm).unwrap();
            assert_eq!(batch_form.begin_us, trace.start_us);
            let lookup = trace.span(Stage::CacheLookup).unwrap();
            let fetch = trace.span(Stage::ClusterFetch).unwrap();
            assert!(lookup.end_us <= fetch.begin_us + 1e-9);
            let rank = trace.span(Stage::MlpRank).unwrap();
            // Marks and completion come from two monotonic clocks; allow sub-us skew.
            assert!(
                rank.end_us <= trace.end_us + 0.5,
                "rank end {} spills past completion {}",
                rank.end_us,
                trace.end_us
            );
        }
        // The slow log holds the worst sampled latencies, worst first.
        let slow = outcome.trace.slow_queries();
        assert_eq!(slow.len(), 8);
        for pair in slow.windows(2) {
            assert!(pair[0].latency_us() >= pair[1].latency_us());
        }
        assert!(outcome.trace.render_slow_log().contains("cluster_fetch"));
    }

    #[test]
    fn warm_replay_hits_more_than_cold() {
        let workload = ReplayWorkload::generate(&replay_config(1000)).unwrap();
        let mut engine = engine(256, ServePrecision::Fp32);
        let cold = engine.replay(&workload).unwrap();
        let warm = engine.replay(&workload).unwrap();
        assert!(
            warm.report.cache.hit_rate() >= cold.report.cache.hit_rate(),
            "warm {} < cold {}",
            warm.report.cache.hit_rate(),
            cold.report.cache.hit_rate()
        );
        // Warm or cold, the numeric results are identical.
        for (a, b) in cold.responses.iter().zip(warm.responses.iter()) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    fn custom_engine(
        shards: usize,
        capacity: usize,
        precision: ServePrecision,
        policy: CachePolicy,
        placement: CachePlacement,
        shard_batching: bool,
    ) -> ServeEngine {
        let cfg = ServeConfig {
            shards,
            cache_policy: policy,
            cache_placement: placement,
            shard_batching,
            ..config(capacity, precision)
        };
        ServeEngine::new(tiny_model(), &items(), cfg).unwrap()
    }

    /// The tentpole's bit-identity pin: moving the cache from the router into
    /// per-shard-node caches must not change a single output bit, at either precision
    /// and across shard counts — only the counters move.
    #[test]
    fn per_shard_cache_replay_is_bit_identical_to_the_router_cache() {
        let workload = ReplayWorkload::generate(&replay_config(2000)).unwrap();
        for precision in [ServePrecision::Fp32, ServePrecision::Int8] {
            for shards in [1usize, 2, 8] {
                let policy = CachePolicy::Clock;
                let router = custom_engine(
                    shards,
                    128,
                    precision,
                    policy,
                    CachePlacement::Router,
                    false,
                )
                .replay(&workload)
                .unwrap();
                let sharded =
                    custom_engine(shards, 128, precision, policy, CachePlacement::Shard, false)
                        .replay(&workload)
                        .unwrap();
                for (a, b) in router.responses.iter().zip(sharded.responses.iter()) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "query {} ({precision:?}, {shards} shards)",
                        a.id
                    );
                    assert_eq!(a.candidates, b.candidates);
                }
                // Every lookup is accounted for under both placements, and the shard
                // placement still absorbs the Zipf head.
                assert_eq!(
                    router.report.cache.lookups(),
                    sharded.report.cache.lookups(),
                    "({precision:?}, {shards} shards)"
                );
                assert!(
                    sharded.report.cache.hit_rate() > 0.3,
                    "shard-placement hit rate {} ({precision:?}, {shards} shards)",
                    sharded.report.cache.hit_rate()
                );
                assert_eq!(sharded.report.cache_placement, "shard");
            }
        }
    }

    /// The admission-quality ordering the cache-scaling study plots: at a capacity far
    /// below the Zipf head, frequency-informed policies beat CLOCK, and TinyLFU's
    /// admission filter beats plain LFU — with bit-identical responses throughout.
    #[test]
    fn cache_policies_rank_by_hit_rate_under_zipf_skew() {
        let workload = ReplayWorkload::generate(&replay_config(10_000)).unwrap();
        let mut rates = Vec::new();
        let mut reference: Option<Vec<ServeResponse>> = None;
        for policy in CachePolicy::ALL {
            let outcome = custom_engine(
                4,
                32,
                ServePrecision::Fp32,
                policy,
                CachePlacement::Router,
                false,
            )
            .replay(&workload)
            .unwrap();
            match &reference {
                None => reference = Some(outcome.responses.clone()),
                Some(expected) => {
                    for (a, b) in outcome.responses.iter().zip(expected.iter()) {
                        assert_eq!(a.score.to_bits(), b.score.to_bits(), "{policy:?}");
                    }
                }
            }
            rates.push((policy, outcome.report.cache.hit_rate()));
        }
        let rate = |p: CachePolicy| rates.iter().find(|(q, _)| *q == p).unwrap().1;
        assert!(
            rate(CachePolicy::TinyLfu) >= rate(CachePolicy::Lfu),
            "{rates:?}"
        );
        assert!(
            rate(CachePolicy::Lfu) >= rate(CachePolicy::Clock),
            "{rates:?}"
        );
    }

    /// Shard-aware batching regroups a batch by home shard before pooling; the
    /// responses must stay bit-identical to the flat pooling order.
    #[test]
    fn shard_batching_replay_is_bit_identical() {
        let workload = ReplayWorkload::generate(&replay_config(1500)).unwrap();
        for precision in [ServePrecision::Fp32, ServePrecision::Int8] {
            for placement in [CachePlacement::Router, CachePlacement::Shard] {
                let flat = custom_engine(4, 64, precision, CachePolicy::Clock, placement, false)
                    .replay(&workload)
                    .unwrap();
                let grouped = custom_engine(4, 64, precision, CachePolicy::Clock, placement, true)
                    .replay(&workload)
                    .unwrap();
                assert_eq!(flat.responses.len(), grouped.responses.len());
                for (a, b) in flat.responses.iter().zip(grouped.responses.iter()) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "query {} ({precision:?}, {placement:?})",
                        a.id
                    );
                    assert_eq!(a.candidates, b.candidates);
                }
                assert_eq!(
                    flat.report.cache.lookups(),
                    grouped.report.cache.lookups(),
                    "({precision:?}, {placement:?})"
                );
            }
        }
    }

    /// The coalescing property: when one batch references the same row many times, the
    /// row is fetched once — exactly one miss, every duplicate counted as coalesced —
    /// under every policy and both cache placements.
    #[test]
    fn coalesced_in_flight_misses_count_once_under_every_policy_and_placement() {
        for policy in CachePolicy::ALL {
            for placement in [CachePlacement::Router, CachePlacement::Shard] {
                let mut engine =
                    custom_engine(4, 64, ServePrecision::Fp32, policy, placement, false);
                let requests: Vec<ServeRequest> = (0..8)
                    .map(|i| ServeRequest {
                        id: i,
                        arrival_us: 0.0,
                        query: InferenceQuery {
                            user_index: i as usize,
                            candidates: 50,
                            top_k: 5,
                        },
                        // Identical histories: 3 unique rows, 24 total lookups.
                        history: vec![3, 300, 900],
                        sparse: vec![1, 2, 3],
                    })
                    .collect();
                engine.process_batch(&requests).unwrap();
                let cold = engine.cache_stats();
                assert_eq!(cold.misses, 3, "{policy:?}/{placement:?}: one miss per row");
                assert_eq!(
                    cold.coalesced, 21,
                    "{policy:?}/{placement:?}: duplicates coalesce"
                );
                assert_eq!(cold.hits, 0, "{policy:?}/{placement:?}");
                // A second identical batch is served without touching shard storage:
                // no new misses, every lookup a hit or coalesced behind one.
                engine.process_batch(&requests).unwrap();
                let warm = engine.cache_stats();
                assert_eq!(
                    warm.misses, 3,
                    "{policy:?}/{placement:?}: warm batch reads no storage"
                );
                assert_eq!(
                    warm.hits + warm.coalesced,
                    45,
                    "{policy:?}/{placement:?}: {warm:?}"
                );
            }
        }
    }

    /// The metrics plane on the simulated path: event-time windows cover every
    /// arrival and completion exactly once, the per-window cache split sums to the
    /// run totals, and the series lands in the report JSON.
    #[test]
    fn simulated_replay_scrapes_a_coherent_time_series() {
        let workload = ReplayWorkload::generate(&replay_config(400)).unwrap();
        let mut served = engine(64, ServePrecision::Fp32);
        assert!(!served.metrics_enabled());
        served.enable_metrics(workload.metrics_config(10));
        assert!(served.metrics_enabled());
        let outcome = served.replay(&workload).unwrap();
        let series = outcome.report.metrics.as_ref().expect("metrics enabled");
        assert!(
            series.windows.len() > 1,
            "virtual arrivals span several windows: {}",
            series.windows.len()
        );
        let arrivals: u64 = series.windows.iter().map(|w| w.arrivals).sum();
        let completions: u64 = series.windows.iter().map(|w| w.completions).sum();
        assert_eq!(arrivals, 400, "every arrival lands in exactly one window");
        assert_eq!(completions, 400);
        assert_eq!(
            series.windows.last().unwrap().queue_depth,
            0,
            "everything drains by the final window"
        );
        let hits: u64 = series.windows.iter().map(|w| w.cache_hits).sum();
        let misses: u64 = series.windows.iter().map(|w| w.cache_misses).sum();
        assert_eq!(hits, outcome.report.cache.hits);
        assert_eq!(misses, outcome.report.cache.misses);
        assert!(series.peak_qps().unwrap().1 > 0.0);
        // Fault-free single-node run: the per-window fault columns are all zero.
        assert!(series.fault_events().iter().all(|&(_, faults)| faults == 0));
        let json = outcome.report.to_json();
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"windows\""));
        // A replay without metrics keeps the section out entirely.
        let mut plain = engine(64, ServePrecision::Fp32);
        let control = plain.replay(&workload).unwrap();
        assert!(control.report.metrics.is_none());
        assert!(!control.report.to_json().contains("\"windows\""));
    }

    /// The exemplar acceptance criterion: with every sampled trace retained, every
    /// stage-histogram bucket with samples carries an exemplar whose trace id
    /// resolves to a retained trace, and the exposition dump renders them.
    #[test]
    fn every_sampled_stage_bucket_carries_a_resolvable_exemplar() {
        use crate::metrics::{exposition, StageExemplars};
        use crate::trace::{Stage, TraceConfig};
        let workload = ReplayWorkload::generate(&replay_config(300)).unwrap();
        let mut served = engine(64, ServePrecision::Fp32);
        served.enable_tracing(TraceConfig {
            sample_every: 1,
            seed: 3,
            capacity: 4096,
            slow_k: 8,
        });
        let outcome = served.replay(&workload).unwrap();
        assert_eq!(outcome.trace.sampled(), 300);
        let exemplars = StageExemplars::harvest(&outcome.trace);
        assert!(!exemplars.is_empty());
        let retained: std::collections::HashSet<u64> = outcome
            .trace
            .traces()
            .iter()
            .chain(outcome.trace.slow_queries().iter())
            .map(|trace| trace.id)
            .collect();
        let stages = &outcome.report.telemetry.stages;
        for (i, (name, histogram)) in stages.stages().iter().enumerate() {
            for (bucket, _upper_us, count) in histogram.indexed_buckets() {
                let (id, value_us) = exemplars.lookup(Stage::ALL[i], bucket).unwrap_or_else(|| {
                    panic!("stage {name} bucket {bucket} has {count} samples but no exemplar")
                });
                assert!(
                    retained.contains(&id),
                    "stage {name} bucket {bucket}: exemplar {id} must resolve to a retained trace"
                );
                assert!(value_us >= 0.0);
            }
        }
        for (bucket, _upper_us, count) in stages.total.indexed_buckets() {
            let (id, _) = exemplars.lookup_total(bucket).unwrap_or_else(|| {
                panic!("total bucket {bucket} has {count} samples, no exemplar")
            });
            assert!(retained.contains(&id));
        }
        let text = exposition(&outcome.report, Some(&outcome.trace));
        assert!(
            text.contains("trace_id=\""),
            "exemplars render in exposition"
        );
        assert!(text.ends_with("# EOF\n"));
    }
}
