//! The threaded serving runtime: real threads, real queues, real backpressure.
//!
//! [`ServeEngine::replay`](crate::engine::ServeEngine::replay) answers the throughput
//! question under a discrete-event simulation — useful for determinism, but the paper's
//! "serve heavy traffic as fast as the hardware allows" claim needs *measured* wall-clock
//! numbers. This module lifts the same pipeline onto threads:
//!
//! ```text
//! producers --try_submit/submit--> [bounded request queue] --> batcher thread
//!     (full queue: rejection            (MPSC, capacity =          | DynamicBatcher,
//!      counted, or producer              queue_capacity)           | wall-clock deadlines
//!      blocks)                                                     v
//!                                  [bounded batch queue] --> worker pool (N threads,
//!                                    (batcher stalls when       each with its own
//!                                     workers fall behind)      ServeEngine clone)
//! ```
//!
//! Every stage is bounded, so overload surfaces as *counted* rejections and stalls
//! instead of unbounded memory growth. Each worker owns a full engine clone (shards,
//! cache, TCAM, model) — no locks on the hot path, and because cached rows are exact
//! copies and pooling order is request order, per-request outputs are **bit-identical**
//! to the simulated single-pipeline path no matter how batches land on workers (pinned
//! by the cross-path equivalence tests).
//!
//! [`replay_threaded`] drives a [`ReplayWorkload`] through the runtime with Poisson
//! arrivals paced in real time and reports measured p50/p95/p99 latency, queue depth,
//! rejection rate, and worker utilization next to the modeled GPCiM energy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::batcher::{DynamicBatcher, FlushedBatch};
use crate::cache::CacheStats;
use crate::clock::{Clock, WallClock};
use crate::engine::{ReplayOutcome, ServeEngine, ServeRequest, ServeResponse};
use crate::error::ServeError;
use crate::metrics::MetricsScraper;
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::replay::ReplayWorkload;
use crate::telemetry::{LatencyHistogram, RuntimeStats, ServeReport, ServeTelemetry};
use crate::trace::TraceLog;

/// Longest the batcher waits for a request when a batch is pending — bounds how stale
/// its view of a non-advancing (manual) clock can get, and caps deadline overshoot.
const PENDING_POLL_CAP_US: f64 = 1_000.0;
/// Longest the batcher waits when idle (a push wakes it immediately via the condvar).
const IDLE_WAIT_US: f64 = 50_000.0;

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads executing batches (each owns a full engine clone).
    pub workers: usize,
    /// Capacity of the bounded request queue — the backpressure bound.
    pub queue_capacity: usize,
    /// Capacity of the flushed-batch queue between the batcher and the workers.
    pub batch_queue_capacity: usize,
}

impl RuntimeConfig {
    /// A runtime with `workers` threads and a `queue_capacity`-deep request queue; the
    /// batch queue defaults to two batches per worker so the batcher can run ahead
    /// without unbounded buffering.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if either count is zero.
    pub fn new(workers: usize, queue_capacity: usize) -> Result<Self, ServeError> {
        let config = Self {
            workers,
            queue_capacity,
            batch_queue_capacity: workers.saturating_mul(2).max(1),
        };
        config.validate()?;
        Ok(config)
    }

    /// Validate the configuration (zero workers or zero-capacity queues are typed
    /// errors, not panics: a caller wiring config from a CLI gets a `Result`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the zero field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "threaded runtime needs at least one worker".to_string(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "threaded runtime needs a request queue capacity >= 1".to_string(),
            });
        }
        if self.batch_queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "threaded runtime needs a batch queue capacity >= 1".to_string(),
            });
        }
        Ok(())
    }
}

/// A request stamped with its wall-clock submit time (the measured-latency origin).
#[derive(Debug)]
struct TimedRequest {
    request: ServeRequest,
    submitted_us: f64,
}

/// Counters shared between producers and the runtime handle.
#[derive(Debug, Default)]
struct SharedCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    depth_max: AtomicU64,
    depth_sum: AtomicU64,
    depth_samples: AtomicU64,
}

/// What the batcher thread hands back when it exits.
#[derive(Debug, Default)]
struct BatcherExit {
    stalls: u64,
    stall_us: f64,
}

/// What each worker thread hands back when it exits.
#[derive(Debug)]
struct WorkerOutput {
    responses: Vec<ServeResponse>,
    latency: LatencyHistogram,
    telemetry: ServeTelemetry,
    cache: CacheStats,
    busy_us: f64,
    last_completion_us: f64,
    trace: TraceLog,
    metrics: Option<MetricsScraper>,
}

/// A running threaded serving pipeline: submit requests, then [`ServeRuntime::shutdown`]
/// to drain in-flight work and collect the outcome.
#[derive(Debug)]
pub struct ServeRuntime {
    requests: Arc<BoundedQueue<TimedRequest>>,
    batches: Arc<BoundedQueue<FlushedBatch<TimedRequest>>>,
    clock: Arc<dyn Clock>,
    shared: Arc<SharedCounters>,
    batcher: Option<JoinHandle<BatcherExit>>,
    workers: Vec<JoinHandle<Result<WorkerOutput, ServeError>>>,
    config: RuntimeConfig,
    start_us: f64,
    report_shards: usize,
    report_cache_capacity: usize,
    report_cache_policy: String,
    report_cache_placement: String,
    report_policy: crate::batcher::BatchPolicy,
    /// Shared cluster counters when the engine serves from a shard cluster; the
    /// shutdown report snapshots them once (they are shared across worker clones, so
    /// per-worker merging would double-count).
    report_cluster: Option<std::sync::Arc<crate::cluster::ClusterCounters>>,
}

impl ServeRuntime {
    /// Start the runtime: spawn the batcher thread and `config.workers` worker threads,
    /// each worker owning a clone of `engine` (with counters reset). The batching policy
    /// is taken from the engine's [`ServeConfig`](crate::engine::ServeConfig); deadlines
    /// are evaluated on `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero worker count or queue capacity.
    pub fn start(
        engine: &ServeEngine,
        config: RuntimeConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let requests: Arc<BoundedQueue<TimedRequest>> =
            Arc::new(BoundedQueue::new(config.queue_capacity));
        let batches: Arc<BoundedQueue<FlushedBatch<TimedRequest>>> =
            Arc::new(BoundedQueue::new(config.batch_queue_capacity));
        let shared = Arc::new(SharedCounters::default());
        let start_us = clock.now_us();

        let policy = engine.config().policy;
        let batcher = {
            let requests = requests.clone();
            let batches = batches.clone();
            let clock = clock.clone();
            std::thread::spawn(move || run_batcher(&requests, &batches, clock.as_ref(), policy))
        };

        let workers = (0..config.workers)
            .map(|_| {
                let mut engine = engine.clone();
                engine.reset_stats();
                // Trace spans must live on the runtime's timeline, not the tracer's
                // private wall clock — on a manual clock this freezes them too.
                engine.set_trace_clock(clock.clone());
                let requests = requests.clone();
                let batches = batches.clone();
                let clock = clock.clone();
                let shared = shared.clone();
                std::thread::spawn(move || {
                    run_worker(engine, &requests, &batches, clock.as_ref(), &shared)
                })
            })
            .collect();

        Ok(Self {
            requests,
            batches,
            clock,
            shared,
            batcher: Some(batcher),
            workers,
            report_shards: engine.num_shards(),
            report_cache_capacity: engine.config().cache_capacity,
            report_cache_policy: engine.config().cache_policy.label().to_string(),
            report_cache_placement: engine.config().cache_placement.label().to_string(),
            report_policy: policy,
            report_cluster: engine.cluster_counters(),
            config,
            start_us,
        })
    }

    /// Submit without blocking: a full queue rejects the request (load shedding) and the
    /// rejection is counted in the runtime stats.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] on backpressure rejection, [`ServeError::RuntimeStopped`]
    /// after shutdown began or a worker died.
    pub fn try_submit(&self, request: ServeRequest) -> Result<(), ServeError> {
        let timed = TimedRequest {
            request,
            submitted_us: self.clock.now_us(),
        };
        match self.requests.try_push(timed) {
            Ok(depth) => {
                self.record_accept(depth);
                Ok(())
            }
            Err(PushError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull {
                    capacity: self.config.queue_capacity,
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::RuntimeStopped),
        }
    }

    /// Submit, blocking while the queue is full (lossless producers; the block *is* the
    /// backpressure).
    ///
    /// # Errors
    ///
    /// [`ServeError::RuntimeStopped`] after shutdown began or a worker died.
    pub fn submit(&self, request: ServeRequest) -> Result<(), ServeError> {
        let timed = TimedRequest {
            request,
            submitted_us: self.clock.now_us(),
        };
        match self.requests.push(timed) {
            Ok(depth) => {
                self.record_accept(depth);
                Ok(())
            }
            Err(_) => Err(ServeError::RuntimeStopped),
        }
    }

    fn record_accept(&self, depth: usize) {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared
            .depth_max
            .fetch_max(depth as u64, Ordering::Relaxed);
        self.shared
            .depth_sum
            .fetch_add(depth as u64, Ordering::Relaxed);
        self.shared.depth_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests currently waiting in the bounded queue.
    pub fn queue_depth(&self) -> usize {
        self.requests.len()
    }

    /// Responses completed so far (across all workers).
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting requests, let the batcher drain everything
    /// queued (including a final partial batch), let the workers finish every flushed
    /// batch, then join all threads and aggregate the outcome. Responses are in
    /// per-worker completion order (concatenated across workers); sort by `id` to
    /// compare with a trace.
    ///
    /// # Errors
    ///
    /// Propagates the first worker error (e.g. a request referencing an out-of-catalogue
    /// row). In-flight work on other workers is still joined before returning.
    pub fn shutdown(mut self) -> Result<ReplayOutcome, ServeError> {
        self.requests.close();
        let mut first_error = None;
        let batcher_exit = match self.batcher.take() {
            Some(handle) => match handle.join() {
                Ok(exit) => exit,
                Err(_) => {
                    // A dead batcher may have taken pending requests with it: surface
                    // the loss instead of returning a silently short outcome.
                    first_error = Some(ServeError::InvalidConfig {
                        reason: "the batcher thread panicked".to_string(),
                    });
                    BatcherExit::default()
                }
            },
            None => BatcherExit::default(),
        };
        self.batches.close();
        let mut outputs = Vec::with_capacity(self.workers.len());
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok(Ok(output)) => outputs.push(output),
                Ok(Err(error)) => first_error = first_error.or(Some(error)),
                Err(_) => {
                    first_error = first_error.or(Some(ServeError::InvalidConfig {
                        reason: "a worker thread panicked".to_string(),
                    }));
                }
            }
        }
        if let Some(error) = first_error {
            return Err(error);
        }

        let mut telemetry = ServeTelemetry::default();
        let mut cache = CacheStats::default();
        let mut responses = Vec::new();
        let mut trace = TraceLog::default();
        let mut worker_busy_us = Vec::with_capacity(outputs.len());
        let mut last_completion_us = self.start_us;
        let mut metrics: Option<MetricsScraper> = None;
        for output in outputs {
            telemetry.merge(&output.telemetry);
            telemetry.latency.merge(&output.latency);
            telemetry.busy_us += output.busy_us;
            cache.merge(&output.cache);
            worker_busy_us.push(output.busy_us);
            last_completion_us = last_completion_us.max(output.last_completion_us);
            responses.extend(output.responses);
            // Head retention commutes with the union, so the merged log equals the
            // single-worker log for the same trace (pinned in the trace tests).
            trace.merge(&output.trace);
            // Window merging is commutative too: events land in windows by their
            // timestamps, so the merged series is independent of worker count.
            if let Some(worker_metrics) = output.metrics {
                match metrics.as_mut() {
                    Some(merged) => merged.merge(&worker_metrics),
                    None => metrics = Some(worker_metrics),
                }
            }
        }
        let wall_us = (last_completion_us - self.start_us).max(0.0);
        telemetry.makespan_us = wall_us;

        let runtime = RuntimeStats {
            workers: self.config.workers,
            queue_capacity: self.config.queue_capacity,
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            batcher_stalls: batcher_exit.stalls,
            batcher_stall_us: batcher_exit.stall_us,
            queue_depth_max: self.shared.depth_max.load(Ordering::Relaxed),
            queue_depth_sum: self.shared.depth_sum.load(Ordering::Relaxed),
            queue_depth_samples: self.shared.depth_samples.load(Ordering::Relaxed),
            worker_busy_us,
            wall_us,
        };
        let report = ServeReport {
            name: "serve_threaded".to_string(),
            policy: self.report_policy,
            shards: self.report_shards,
            cache_capacity: self.report_cache_capacity,
            cache_policy: self.report_cache_policy.clone(),
            cache_placement: self.report_cache_placement.clone(),
            telemetry,
            cache,
            runtime: Some(runtime),
            cluster: self
                .report_cluster
                .as_ref()
                .map(|counters| counters.snapshot()),
            metrics: metrics.as_ref().map(MetricsScraper::series),
        };
        Ok(ReplayOutcome {
            responses,
            report,
            trace,
        })
    }
}

impl Drop for ServeRuntime {
    /// Dropping without [`ServeRuntime::shutdown`] (e.g. unwinding past an error) still
    /// closes the queues and joins the threads so nothing is left running detached.
    fn drop(&mut self) {
        self.requests.close();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        self.batches.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The batcher thread: pop requests from the bounded queue, coalesce them under the
/// policy with deadlines evaluated on `clock`, and push flushed batches downstream.
/// Blocking on a full batch queue is the measured stall; a closed batch queue (a worker
/// died) ends the loop.
fn run_batcher(
    requests: &BoundedQueue<TimedRequest>,
    batches: &BoundedQueue<FlushedBatch<TimedRequest>>,
    clock: &dyn Clock,
    policy: crate::batcher::BatchPolicy,
) -> BatcherExit {
    let mut batcher: DynamicBatcher<TimedRequest> = DynamicBatcher::new(policy);
    let mut exit = BatcherExit::default();
    loop {
        let now = clock.now_us();
        if let Some(batch) = batcher.poll(now) {
            if !push_batch(batches, batch, &mut exit) {
                return exit;
            }
        }
        let wait_us = match batcher.deadline_us() {
            Some(deadline) => (deadline - clock.now_us()).clamp(0.0, PENDING_POLL_CAP_US),
            None => IDLE_WAIT_US,
        };
        match requests.pop_timeout(Duration::from_secs_f64(wait_us.max(1.0) / 1e6)) {
            Pop::Item(timed) => {
                // Offer at pop time (monotone, so arrival order holds); the submit
                // stamp still anchors the measured end-to-end latency.
                let now = clock.now_us();
                if let Some(batch) = batcher.poll(now) {
                    if !push_batch(batches, batch, &mut exit) {
                        return exit;
                    }
                }
                if let Some(batch) = batcher.offer(timed, now) {
                    if !push_batch(batches, batch, &mut exit) {
                        return exit;
                    }
                }
            }
            Pop::TimedOut => {}
            Pop::Closed => {
                if let Some(batch) = batcher.drain(clock.now_us()) {
                    push_batch(batches, batch, &mut exit);
                }
                return exit;
            }
        }
    }
}

/// Push a flushed batch downstream; a full queue is the backpressure stall (counted and
/// timed). Returns `false` when the batch queue is closed (a worker died) — the caller
/// stops batching.
fn push_batch(
    batches: &BoundedQueue<FlushedBatch<TimedRequest>>,
    batch: FlushedBatch<TimedRequest>,
    exit: &mut BatcherExit,
) -> bool {
    match batches.try_push(batch) {
        Ok(_) => true,
        Err(PushError::Full(batch)) => {
            exit.stalls += 1;
            let stall_started = Instant::now();
            let pushed = batches.push(batch).is_ok();
            exit.stall_us += stall_started.elapsed().as_secs_f64() * 1e6;
            pushed
        }
        Err(PushError::Closed(_)) => false,
    }
}

/// Closes both runtime queues if the owning thread unwinds, so a panicking worker
/// cannot leave the batcher blocked on a full batch queue (which `shutdown` joins
/// first) or producers blocked on submit — a panic must fail the run, not deadlock it.
struct CloseQueuesOnPanic<'a> {
    requests: &'a BoundedQueue<TimedRequest>,
    batches: &'a BoundedQueue<FlushedBatch<TimedRequest>>,
}

impl Drop for CloseQueuesOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.requests.close();
            self.batches.close();
        }
    }
}

/// A worker thread: execute flushed batches on an owned engine clone, stamping measured
/// per-request latency (completion minus submit) into a local histogram. On an engine
/// error (or panic, via [`CloseQueuesOnPanic`]), close both queues so producers and the
/// batcher unblock instead of deadlocking, and hand the error to `shutdown`.
fn run_worker(
    mut engine: ServeEngine,
    requests: &BoundedQueue<TimedRequest>,
    batches: &BoundedQueue<FlushedBatch<TimedRequest>>,
    clock: &dyn Clock,
    shared: &SharedCounters,
) -> Result<WorkerOutput, ServeError> {
    let _panic_guard = CloseQueuesOnPanic { requests, batches };
    let mut latency = LatencyHistogram::new();
    let mut responses = Vec::new();
    let mut busy_us = 0.0f64;
    let mut last_completion_us = 0.0f64;
    loop {
        let batch = match batches.pop() {
            Pop::Item(batch) => batch,
            Pop::Closed => break,
            Pop::TimedOut => continue,
        };
        let trigger_us = batch.trigger_us;
        let (batch_requests, stamps): (Vec<ServeRequest>, Vec<f64>) = batch
            .requests
            .into_iter()
            .map(|timed| (timed.request, timed.submitted_us))
            .unzip();
        let metrics_marker = engine.metrics_cache_marker();
        let service_started = Instant::now();
        let mut batch_responses = match engine.process_batch(&batch_requests) {
            Ok(batch_responses) => batch_responses,
            Err(error) => {
                requests.close();
                batches.close();
                return Err(error);
            }
        };
        busy_us += service_started.elapsed().as_secs_f64() * 1e6;
        let completed_us = clock.now_us();
        last_completion_us = last_completion_us.max(completed_us);
        if engine.trace_config().is_some() {
            let queries: Vec<(u64, f64)> = batch_requests
                .iter()
                .zip(stamps.iter())
                .map(|(request, &submitted_us)| (request.id, submitted_us))
                .collect();
            engine.finalize_trace(&queries, trigger_us, completed_us);
        }
        for (response, submitted_us) in batch_responses.iter_mut().zip(&stamps) {
            response.latency_us = (completed_us - submitted_us).max(0.0);
            latency.record(response.latency_us);
        }
        if metrics_marker.is_some() {
            // Arrivals are the submit stamps (the measured-latency origin), so the
            // per-window queue depth reflects what producers actually experienced.
            let latencies: Vec<f64> = batch_responses.iter().map(|r| r.latency_us).collect();
            engine.record_metrics_batch(metrics_marker, &stamps, completed_us, &latencies);
        }
        shared
            .completed
            .fetch_add(batch_responses.len() as u64, Ordering::Relaxed);
        responses.extend(batch_responses);
    }
    let trace = engine.take_trace_log();
    let metrics = engine.take_metrics();
    Ok(WorkerOutput {
        responses,
        latency,
        telemetry: engine.telemetry().clone(),
        cache: engine.cache_stats(),
        busy_us,
        last_completion_us,
        trace,
        metrics,
    })
}

/// Configuration of a threaded replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedReplayConfig {
    /// The runtime shape: workers and queue bounds.
    pub runtime: RuntimeConfig,
    /// Arrival-time divisor: `1.0` replays the trace's Poisson arrivals in real time,
    /// `10.0` plays it 10× faster, [`f64::INFINITY`] submits back-to-back (peak-load
    /// mode: latency then measures pure queueing + service).
    pub speedup: f64,
    /// `true`: a full request queue *rejects* (load shedding; rejections counted and the
    /// dropped requests never answered). `false`: the producer blocks until space frees
    /// (lossless, the mode the equivalence tests use).
    pub shed_on_full: bool,
}

impl ThreadedReplayConfig {
    /// A lossless real-time replay through `workers` workers with a `queue_capacity`
    /// request queue.
    ///
    /// # Errors
    ///
    /// As for [`RuntimeConfig::new`].
    pub fn real_time(workers: usize, queue_capacity: usize) -> Result<Self, ServeError> {
        Ok(Self {
            runtime: RuntimeConfig::new(workers, queue_capacity)?,
            speedup: 1.0,
            shed_on_full: false,
        })
    }

    fn validate(&self) -> Result<(), ServeError> {
        self.runtime.validate()?;
        if self.speedup.is_nan() || self.speedup <= 0.0 {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "threaded replay needs a positive speedup, got {}",
                    self.speedup
                ),
            });
        }
        Ok(())
    }
}

/// Replay a timed trace through the threaded runtime, pacing Poisson arrivals on the
/// real clock. The driver thread sleeps until each request's (speedup-scaled) arrival
/// time, submits it, and shuts the runtime down after the last request; the outcome's
/// report carries measured latency quantiles and [`RuntimeStats`] beside the modeled
/// GPCiM cost, and the per-request outputs are bit-identical to
/// [`ServeEngine::replay`](crate::engine::ServeEngine::replay) over the same trace
/// (responses arrive in completion order — sort by `id` to align).
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for a bad configuration and propagates the
/// first worker error otherwise.
pub fn replay_threaded(
    engine: &ServeEngine,
    workload: &ReplayWorkload,
    config: &ThreadedReplayConfig,
) -> Result<ReplayOutcome, ServeError> {
    config.validate()?;
    let clock = Arc::new(WallClock::new());
    let runtime = ServeRuntime::start(engine, config.runtime.clone(), clock.clone())?;
    let mut drive_error = None;
    for request in workload.requests() {
        if config.speedup.is_finite() {
            let target_us = request.arrival_us / config.speedup;
            loop {
                let remaining_us = target_us - clock.now_us();
                if remaining_us <= 0.0 {
                    break;
                }
                std::thread::sleep(Duration::from_secs_f64(remaining_us / 1e6));
            }
        }
        let submitted = if config.shed_on_full {
            match runtime.try_submit(request.clone()) {
                Err(ServeError::QueueFull { .. }) => Ok(()), // shed: counted, not fatal
                other => other,
            }
        } else {
            runtime.submit(request.clone())
        };
        if let Err(error) = submitted {
            drive_error = Some(error);
            break;
        }
    }
    let outcome = runtime.shutdown()?;
    match drive_error {
        // A submit error means the runtime stopped under us; shutdown above surfaces
        // the root cause if a worker died, otherwise report the submit failure.
        Some(error) => Err(error),
        None => Ok(outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use crate::clock::ManualClock;
    use crate::engine::{ServeConfig, ServePrecision};
    use crate::replay::ReplayConfig;
    use imars_datasets::workload::InferenceQuery;
    use imars_recsys::dlrm::{Dlrm, DlrmConfig};
    use imars_recsys::EmbeddingTable;

    const ITEM_DIM: usize = 4;
    const NUM_ITEMS: usize = 512;

    fn engine_with_policy(policy: BatchPolicy) -> ServeEngine {
        let items = EmbeddingTable::new(NUM_ITEMS, ITEM_DIM, 31).unwrap();
        let config = ServeConfig {
            shards: 4,
            cache_capacity: 64,
            cache_policy: crate::cache::CachePolicy::Clock,
            cache_placement: crate::cache::CachePlacement::Router,
            shard_batching: false,
            precision: ServePrecision::Fp32,
            policy,
            signature_bits: 64,
            search_radius: 27,
            lsh_seed: 7,
        };
        ServeEngine::new(Dlrm::new(DlrmConfig::tiny()).unwrap(), &items, config).unwrap()
    }

    fn request(id: u64) -> ServeRequest {
        ServeRequest {
            id,
            arrival_us: 0.0,
            query: InferenceQuery {
                user_index: id as usize,
                candidates: 50,
                top_k: 10,
            },
            history: vec![(id % 64) as u32, 3, 7, 11],
            sparse: vec![1, 2, 3],
        }
    }

    fn replay_config(queries: usize) -> ReplayConfig {
        ReplayConfig {
            queries,
            num_users: 100,
            num_items: NUM_ITEMS,
            zipf_exponent: 1.2,
            history_len: 12,
            offered_qps: 200_000.0,
            candidates_per_query: 50,
            top_k: 10,
            sparse_cardinalities: DlrmConfig::tiny().sparse_cardinalities,
            seed: 77,
            item_permutation_seed: None,
        }
    }

    #[test]
    fn zero_worker_and_zero_capacity_configs_are_typed_errors() {
        assert!(matches!(
            RuntimeConfig::new(0, 16),
            Err(ServeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            RuntimeConfig::new(2, 0),
            Err(ServeError::InvalidConfig { .. })
        ));
        let mut config = RuntimeConfig::new(1, 1).unwrap();
        config.batch_queue_capacity = 0;
        assert!(matches!(
            config.validate(),
            Err(ServeError::InvalidConfig { .. })
        ));
        let engine = engine_with_policy(BatchPolicy::new(8, 100.0).unwrap());
        assert!(matches!(
            ServeRuntime::start(&engine, config, Arc::new(WallClock::new())),
            Err(ServeError::InvalidConfig { .. })
        ));
        // Bad replay configs are typed too.
        let bad = ThreadedReplayConfig {
            runtime: RuntimeConfig::new(1, 4).unwrap(),
            speedup: 0.0,
            shed_on_full: false,
        };
        let workload = ReplayWorkload::generate(&replay_config(10)).unwrap();
        assert!(matches!(
            replay_threaded(&engine, &workload, &bad),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn shutdown_drains_everything_in_flight() {
        // Large max_batch + long deadline: at shutdown time most requests are still
        // pending in the batcher or the queues; the graceful drain must answer them all.
        let engine = engine_with_policy(BatchPolicy::new(64, 1e9).unwrap());
        let runtime = ServeRuntime::start(
            &engine,
            RuntimeConfig::new(2, 256).unwrap(),
            Arc::new(WallClock::new()),
        )
        .unwrap();
        for id in 0..100 {
            runtime.submit(request(id)).unwrap();
        }
        let outcome = runtime.shutdown().unwrap();
        assert_eq!(
            outcome.responses.len(),
            100,
            "every in-flight request is answered"
        );
        let mut ids: Vec<u64> = outcome.responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100u64).collect::<Vec<_>>());
        let stats = outcome
            .report
            .runtime
            .expect("threaded run carries runtime stats");
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.worker_busy_us.len(), 2);
        assert_eq!(outcome.report.telemetry.queries, 100);
        // Measured latency was recorded for every response.
        assert_eq!(outcome.report.telemetry.latency.count(), 100);
        assert!(outcome.responses.iter().all(|r| r.latency_us >= 0.0));
    }

    #[test]
    fn submitting_after_shutdown_reports_runtime_stopped() {
        let engine = engine_with_policy(BatchPolicy::new(4, 100.0).unwrap());
        let runtime = ServeRuntime::start(
            &engine,
            RuntimeConfig::new(1, 8).unwrap(),
            Arc::new(WallClock::new()),
        )
        .unwrap();
        // Close the queue out from under the handle the way shutdown would.
        runtime.requests.close();
        assert!(matches!(
            runtime.try_submit(request(0)),
            Err(ServeError::RuntimeStopped)
        ));
        assert!(matches!(
            runtime.submit(request(1)),
            Err(ServeError::RuntimeStopped)
        ));
        let outcome = runtime.shutdown().unwrap();
        assert!(outcome.responses.is_empty());
    }

    #[test]
    fn full_queue_counts_rejections_without_deadlocking() {
        // One slow worker (every request is its own batch), a batch queue of 1 and a
        // tiny request queue: a fast burst MUST overflow the request queue. The burst
        // far exceeds total downstream buffering (1 pending + 1 queued batch + request
        // queue 2), so rejections are guaranteed regardless of machine speed, and the
        // accepted requests must all still complete.
        let engine = engine_with_policy(BatchPolicy::new(1, 1e9).unwrap());
        let mut config = RuntimeConfig::new(1, 2).unwrap();
        config.batch_queue_capacity = 1;
        let runtime = ServeRuntime::start(&engine, config, Arc::new(WallClock::new())).unwrap();
        let total: u64 = 400;
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for id in 0..total {
            match runtime.try_submit(request(id)) {
                Ok(()) => accepted += 1,
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        let outcome = runtime.shutdown().unwrap();
        assert_eq!(accepted + rejected, total);
        assert!(
            rejected > 0,
            "a 400-request burst must overflow a 2-deep queue"
        );
        assert_eq!(
            outcome.responses.len(),
            accepted as usize,
            "accepted requests all complete"
        );
        let stats = outcome.report.runtime.unwrap();
        assert_eq!(stats.submitted, accepted);
        assert_eq!(stats.rejected, rejected);
        assert!(stats.rejection_rate() > 0.0);
        assert!(stats.queue_depth_max >= 1);
        // Responses are exactly the accepted ids, no duplicates, no strays.
        let mut ids: Vec<u64> = outcome.responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), accepted as usize);
    }

    #[test]
    fn deadline_flushes_follow_the_injected_clock() {
        // With a frozen manual clock the deadline never arrives, so a lone request
        // sits in the batcher; advancing the clock past the deadline flushes it.
        let engine = engine_with_policy(BatchPolicy::new(100, 500.0).unwrap());
        let clock = Arc::new(ManualClock::new());
        let runtime =
            ServeRuntime::start(&engine, RuntimeConfig::new(1, 8).unwrap(), clock.clone()).unwrap();
        runtime.submit(request(0)).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            runtime.completed(),
            0,
            "frozen clock: the deadline must not fire"
        );
        clock.advance_us(1_000.0);
        let waited = Instant::now();
        while runtime.completed() < 1 {
            assert!(
                waited.elapsed() < Duration::from_secs(5),
                "deadline flush did not fire after the clock advanced"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let outcome = runtime.shutdown().unwrap();
        assert_eq!(outcome.responses.len(), 1);
    }

    #[test]
    fn a_panicking_worker_closes_the_queues_instead_of_deadlocking() {
        let requests: BoundedQueue<TimedRequest> = BoundedQueue::new(4);
        let batches: BoundedQueue<FlushedBatch<TimedRequest>> = BoundedQueue::new(1);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = CloseQueuesOnPanic {
                    requests: &requests,
                    batches: &batches,
                };
                panic!("worker died mid-batch");
            });
            assert!(handle.join().is_err(), "the thread must have panicked");
        });
        assert!(requests.is_closed(), "panic must close the request queue");
        assert!(batches.is_closed(), "panic must close the batch queue");
        // A clean exit must NOT close anything (other workers keep consuming).
        let open: BoundedQueue<TimedRequest> = BoundedQueue::new(4);
        let open_batches: BoundedQueue<FlushedBatch<TimedRequest>> = BoundedQueue::new(1);
        {
            let _guard = CloseQueuesOnPanic {
                requests: &open,
                batches: &open_batches,
            };
        }
        assert!(!open.is_closed());
        assert!(!open_batches.is_closed());
    }

    #[test]
    fn worker_errors_propagate_and_do_not_hang_shutdown() {
        let engine = engine_with_policy(BatchPolicy::new(1, 100.0).unwrap());
        let runtime = ServeRuntime::start(
            &engine,
            RuntimeConfig::new(1, 8).unwrap(),
            Arc::new(WallClock::new()),
        )
        .unwrap();
        let mut poisoned = request(0);
        poisoned.history = vec![NUM_ITEMS as u32]; // out of catalogue
        runtime.submit(poisoned).unwrap();
        // The worker hits the error, closes the queues, and shutdown surfaces it.
        let error = runtime
            .shutdown()
            .expect_err("the poisoned request must surface");
        assert!(matches!(error, ServeError::RowOutOfRange { .. }));
    }

    #[test]
    fn threaded_replay_matches_the_simulated_path_bit_for_bit() {
        for precision in [ServePrecision::Fp32, ServePrecision::Int8] {
            let items = EmbeddingTable::new(NUM_ITEMS, ITEM_DIM, 31).unwrap();
            let config = ServeConfig {
                shards: 4,
                cache_capacity: 64,
                cache_policy: crate::cache::CachePolicy::Clock,
                cache_placement: crate::cache::CachePlacement::Router,
                shard_batching: false,
                precision,
                policy: BatchPolicy::new(16, 300.0).unwrap(),
                signature_bits: 64,
                search_radius: 27,
                lsh_seed: 7,
            };
            let mut simulated_engine =
                ServeEngine::new(Dlrm::new(DlrmConfig::tiny()).unwrap(), &items, config).unwrap();
            let workload = ReplayWorkload::generate(&replay_config(600)).unwrap();
            let simulated = simulated_engine.replay(&workload).unwrap();
            let threaded = replay_threaded(
                &simulated_engine,
                &workload,
                &ThreadedReplayConfig {
                    runtime: RuntimeConfig::new(3, 1024).unwrap(),
                    speedup: f64::INFINITY, // no pacing: stress batching variance
                    shed_on_full: false,
                },
            )
            .unwrap();
            assert_eq!(threaded.responses.len(), 600);
            let mut by_id = threaded.responses.clone();
            by_id.sort_unstable_by_key(|r| r.id);
            let mut simulated_by_id = simulated.responses.clone();
            simulated_by_id.sort_unstable_by_key(|r| r.id);
            for (t, s) in by_id.iter().zip(simulated_by_id.iter()) {
                assert_eq!(t.id, s.id);
                assert_eq!(
                    t.score.to_bits(),
                    s.score.to_bits(),
                    "query {} ({precision:?}): threaded and simulated scores must be bit-identical",
                    t.id
                );
                assert_eq!(t.candidates, s.candidates, "query {} ({precision:?})", t.id);
            }
            // Measured telemetry is coherent: every request has a measured latency and
            // the quantiles are ordered.
            let t = &threaded.report.telemetry;
            assert_eq!(t.queries, 600);
            assert_eq!(t.latency.count(), 600);
            let (p50, p95, p99) = (
                t.latency.quantile_us(0.50),
                t.latency.quantile_us(0.95),
                t.latency.quantile_us(0.99),
            );
            assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99);
            let stats = threaded.report.runtime.as_ref().unwrap();
            assert_eq!(stats.submitted, 600);
            assert_eq!(stats.rejected, 0);
            assert!(stats.wall_us > 0.0);
            assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
        }
    }

    #[test]
    fn threaded_traces_cover_every_sampled_query_across_workers() {
        use crate::trace::{Stage, TraceConfig};
        let trace_config = TraceConfig {
            sample_every: 4,
            seed: 9,
            capacity: 1024,
            slow_k: 4,
        };
        let mut engine = engine_with_policy(BatchPolicy::new(16, 300.0).unwrap());
        engine.enable_tracing(trace_config);
        let workload = ReplayWorkload::generate(&replay_config(400)).unwrap();
        let outcome = replay_threaded(
            &engine,
            &workload,
            &ThreadedReplayConfig {
                runtime: RuntimeConfig::new(3, 1024).unwrap(),
                speedup: f64::INFINITY,
                shed_on_full: false,
            },
        )
        .unwrap();
        // Sampling is a pure function of (seed, id): with a lossless replay every
        // sampled query is traced exactly once, no matter which worker served it.
        let expected = (0..400u64).filter(|&id| trace_config.samples(id)).count() as u64;
        assert!(expected > 0);
        assert_eq!(outcome.trace.sampled(), expected);
        let stages = &outcome.report.telemetry.stages;
        assert_eq!(stages.sampled, expected);
        let total_p50 = stages.total.quantile_us(0.5);
        for (name, histogram) in stages.stages() {
            assert_eq!(histogram.count(), expected, "stage {name}");
            // Stage p50s nest under the measured end-to-end p50 (one bucket ≈ 9%).
            assert!(
                histogram.quantile_us(0.5) <= total_p50 * 1.1 + 1e-9,
                "stage {name} p50 {} above e2e p50 {total_p50}",
                histogram.quantile_us(0.5)
            );
        }
        // Measured span trees nest inside each query's submit → completion window.
        for trace in outcome.trace.traces() {
            assert_eq!(trace.spans.len(), 6);
            let form = trace.span(Stage::BatchForm).unwrap();
            assert!(form.begin_us >= trace.start_us - 1e-9);
            let rank = trace.span(Stage::MlpRank).unwrap();
            assert!(
                rank.end_us <= trace.end_us + 1e-9,
                "rank end {} past completion {}",
                rank.end_us,
                trace.end_us
            );
        }
        assert!(!outcome.trace.slow_queries().is_empty());
    }

    #[test]
    fn paced_replay_tracks_the_offered_load() {
        // Pace a 200-query trace at 20k qps (10ms of traffic): the measured wall time
        // must cover at least the trace span, and nothing is lost.
        let engine = engine_with_policy(BatchPolicy::new(16, 300.0).unwrap());
        let mut config = replay_config(200);
        config.offered_qps = 20_000.0;
        let workload = ReplayWorkload::generate(&config).unwrap();
        let trace_span_us = workload.requests().last().unwrap().arrival_us;
        let outcome = replay_threaded(
            &engine,
            &workload,
            &ThreadedReplayConfig::real_time(2, 256).unwrap(),
        )
        .unwrap();
        assert_eq!(outcome.responses.len(), 200);
        let stats = outcome.report.runtime.unwrap();
        assert!(
            stats.wall_us >= trace_span_us * 0.9,
            "paced run ({} us) must span the trace ({trace_span_us} us)",
            stats.wall_us
        );
    }
}
