//! `imars-serve`: a production-shaped serving engine in front of the iMARS batched hot
//! path.
//!
//! The per-call model APIs (`Dlrm::predict_batch`, the pooling kernels) answer "how fast
//! is one batch"; this crate answers the paper's actual end-to-end question — queries per
//! second and tail latency under live, skewed traffic. It provides:
//!
//! * [`batcher`] — a dynamic batcher coalescing single queries into batches under a
//!   max-batch-size / max-wait policy (size and deadline flushes);
//! * [`shard`] — embedding tables range-partitioned across shards with scoped-thread
//!   fetch workers, generic over f32 and int8 (CMA-format) rows;
//! * [`cache`] — the hot-row cache with CLOCK, LFU and TinyLFU (frequency sketch +
//!   doorkeeper admission) replacement policies and hit/miss/coalesce counters, the
//!   piece that turns Zipf-skewed traffic into a measurable win; it serves either as
//!   one router-side cache or split into per-shard-node caches
//!   ([`CachePlacement`]);
//! * [`engine`] — the pipeline: pooled user profiles (GPCiM-costed), LSH + TCAM
//!   candidate filtering ([`imars_fabric::cma::CmaArray::search_batch`]), batched DLRM
//!   ranking, with every numeric result bit-identical cache-on versus cache-off;
//! * [`replay`] — Zipf traffic traces with Poisson arrivals built on
//!   [`imars_datasets`]'s workload generators;
//! * [`runtime`] — the threaded serving runtime: a bounded MPSC request queue feeding
//!   the batcher on a wall-clock [`clock`], a worker pool of engine clones, counted
//!   backpressure (rejections and stalls), and a real-time replay driver with
//!   *measured* latency — bit-identical outputs to the simulated path;
//! * [`queue`] — the bounded queue primitive behind the runtime's backpressure;
//! * [`placement`] — catalogue placement across shard nodes: range vs frequency-aware
//!   (trace-histogram-driven) partitioning with optional hot-row replication, and the
//!   deterministic per-shard split of a batch's lookups;
//! * [`cluster`] — multi-node shard routing: per-shard bounded queues + workers, a
//!   router/gather pair with bit-identical outputs to the single-node path, and an
//!   RSC-bus interconnect charge per cross-shard hop; with a
//!   [`ResilienceConfig`] the router survives shard death —
//!   deadline timeouts, bounded retries with backoff, hedged reads, and promotion of a
//!   dead shard's replicated hot rows, with graceful zero-fill degradation beyond that;
//! * [`transport`] — length-prefixed binary framing over Unix-domain sockets and the
//!   shard-node server loop, so shards can run as separate processes (the in-process
//!   path stays the deterministic bit-identity oracle);
//! * [`chaos`] — deterministic fault injection (kill / stall / slow / drop-frames on a
//!   chosen shard after a chosen number of served sub-requests) driving the chaos test
//!   suite and `serve_replay --chaos`;
//! * [`telemetry`] — log-bucketed latency histogram (p50/p95/p99 plus the full bucket
//!   distribution), throughput, cache, runtime, cluster, fault-tolerance, per-stage
//!   tail-attribution and modeled-cost reporting with a bench-harness-style JSON
//!   summary;
//! * [`trace`] — deterministic, clock-injected query tracing: per-stage spans, cluster
//!   sub-request child spans with retry/hedge/timeout/promotion events,
//!   shard-node-side server spans propagated over the UDS trace context, seeded
//!   head-based sampling into a bounded log, a slow-query log, and a
//!   Chrome-trace-event JSON exporter (Perfetto-loadable);
//! * [`metrics`] — the live metrics plane: a lock-cheap counter/gauge/histogram
//!   registry scraped into fixed event-time windows by a deterministic
//!   [`MetricsScraper`], a per-window time-series section in the report JSON,
//!   and a Prometheus-style text exposition with histogram exemplars linking
//!   tail buckets to retained traces.

#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod chaos;
pub mod clock;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod placement;
pub mod queue;
pub mod replay;
pub mod runtime;
pub mod shard;
pub mod telemetry;
pub mod trace;
pub mod transport;

pub use batcher::{BatchPolicy, DynamicBatcher, FlushReason, FlushedBatch};
pub use cache::{CachePlacement, CachePolicy, CacheStats, HotRowCache};
pub use chaos::{ChaosPlan, FaultKind, FaultSpec};
pub use clock::{Clock, ManualClock, WallClock};
pub use cluster::{
    ClusterClient, ClusterConfig, ClusterHandle, ClusterOptions, NodeCacheConfig, ResilienceConfig,
};
pub use engine::{
    ReplayOutcome, ServeConfig, ServeEngine, ServePrecision, ServeRequest, ServeResponse,
};
pub use error::ServeError;
pub use metrics::{
    exposition, Counter, Gauge, Histogram, MetricsConfig, MetricsScraper, MetricsSeries,
    ShardFaultDelta, StageExemplars, WindowSample,
};
pub use placement::{Placement, ShardPlan, ShardSplit, SubBatch};
pub use queue::{BoundedQueue, Pop, PushError};
pub use replay::{ReplayConfig, ReplayWorkload};
pub use runtime::{replay_threaded, RuntimeConfig, ServeRuntime, ThreadedReplayConfig};
pub use shard::{shard_embedding, shard_quantized, Lane, ShardedTable};
pub use telemetry::{
    ClusterStats, LatencyHistogram, RuntimeStats, ServeReport, ServeTelemetry, StageBreakdown,
};
pub use trace::{
    chrome_export, FetchEvent, FetchEventKind, FetchSpan, NodeSpan, QueryTrace, Span, Stage,
    TraceConfig, TraceLog,
};
pub use transport::run_shard_node;
