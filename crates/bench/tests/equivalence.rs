//! Cross-crate equivalence properties of the pooling hot path:
//!
//! * the batched f32 path matches the naive per-request path **bit-for-bit**;
//! * the int8 packed (SWAR/GPCiM) path matches the naive scalar saturating path
//!   bit-for-bit, and the f32 path within quantization error while unsaturated;
//! * `pack_embedding` / `unpack_embedding` round-trip on random rows of every width;
//! * the full `imars-serve` pipeline (batcher + shards + cache + TCAM filter + ranking)
//!   matches a query-at-a-time pipeline built directly from the primitive APIs.

use imars_device::characterization::ArrayFom;
use imars_fabric::cma::{pack_embedding, unpack_embedding, CmaArray, PackedTable};
use imars_recsys::batch::{PoolingBatch, PoolingMode};
use imars_recsys::dlrm::{Dlrm, DlrmConfig, DlrmSample};
use imars_recsys::lsh::RandomHyperplaneLsh;
use imars_recsys::quantization::QuantizedTable;
use imars_recsys::EmbeddingTable;
use imars_serve::{
    replay_threaded, BatchPolicy, CachePlacement, CachePolicy, ClusterConfig, Placement,
    ReplayConfig, ReplayWorkload, RuntimeConfig, ServeConfig, ServeEngine, ServePrecision,
    ThreadedReplayConfig, TraceConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn pack_unpack_round_trip_property() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..200 {
        let dim = rng.gen_range(1..=64usize);
        let row: Vec<i8> = (0..dim)
            .map(|_| rng.gen_range(-128..=127i32) as i8)
            .collect();
        let packed = pack_embedding(&row);
        assert_eq!(packed.len(), dim.div_ceil(8));
        assert_eq!(unpack_embedding(&packed, dim), row);
    }
}

#[test]
fn batched_f32_pooling_matches_naive_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(2);
    for &dim in &[8usize, 32, 33] {
        let table = EmbeddingTable::new(500, dim, 3).unwrap();
        let requests: Vec<Vec<u32>> = (0..64)
            .map(|_| {
                (0..rng.gen_range(0..40usize))
                    .map(|_| rng.gen_range(0..500u32))
                    .collect()
            })
            .collect();
        let batch = PoolingBatch::from_requests(&requests);
        let mut out = vec![0.0f32; batch.len() * dim];
        table
            .gather_pool_batch(&batch, PoolingMode::Sum, &mut out)
            .unwrap();
        for (request, chunk) in requests.iter().zip(out.chunks(dim)) {
            let naive: Vec<usize> = request.iter().map(|&i| i as usize).collect();
            assert_eq!(chunk, table.pool(&naive).unwrap().as_slice());
        }
    }
}

#[test]
fn int8_packed_pooling_matches_naive_scalar_saturating_path() {
    let mut rng = StdRng::seed_from_u64(4);
    let dim = 32;
    let rows: Vec<Vec<i8>> = (0..300)
        .map(|_| {
            (0..dim)
                .map(|_| rng.gen_range(-128..=127i32) as i8)
                .collect()
        })
        .collect();
    let packed = PackedTable::from_rows(rows.iter().map(|r| r.as_slice()), dim).unwrap();
    for _ in 0..100 {
        let indices: Vec<u32> = (0..rng.gen_range(1..30usize))
            .map(|_| rng.gen_range(0..300u32))
            .collect();
        // Naive scalar reference: sequential per-element saturating adds.
        let mut expected = vec![0i8; dim];
        for &index in &indices {
            for (acc, &value) in expected.iter_mut().zip(rows[index as usize].iter()) {
                *acc = acc.saturating_add(value);
            }
        }
        assert_eq!(packed.pool(&indices).unwrap(), expected);
    }
}

#[test]
fn int8_packed_pooling_tracks_f32_within_quantization_error() {
    // One large-magnitude row pins the quantization scale; the pooled rows are small
    // enough that the int8 accumulator cannot saturate, so the int8 sum must stay within
    // the accumulated half-step quantization error of the f32 sum.
    let mut rng = StdRng::seed_from_u64(5);
    let dim = 32;
    let pooling_factor = 16;
    let mut table = EmbeddingTable::zeros(101, dim).unwrap();
    table.lookup_mut(100).unwrap().fill(1.0); // scale anchor: quantizes to 127
    for row in 0..100 {
        let values: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.05..0.05f32)).collect();
        table.lookup_mut(row).unwrap().copy_from_slice(&values);
    }
    let quantized = QuantizedTable::from_table(&table);
    let scale = quantized.params().scale;
    let packed = PackedTable::from_rows(quantized.iter_rows(), dim).unwrap();

    for _ in 0..50 {
        let indices: Vec<u32> = (0..pooling_factor)
            .map(|_| rng.gen_range(0..100u32))
            .collect();
        let int8_sum = packed.pool(&indices).unwrap();
        let f32_sum = table
            .pool(&indices.iter().map(|&i| i as usize).collect::<Vec<usize>>())
            .unwrap();
        // Worst case |q·scale − v| per row is scale/2; errors add across the pool.
        let tolerance = scale * 0.5 * pooling_factor as f32 + 1e-5;
        for (&q, &v) in int8_sum.iter().zip(f32_sum.iter()) {
            assert!(
                (q as f32 * scale - v).abs() <= tolerance,
                "int8 {} (dequant {}) vs f32 {} exceeds tolerance {}",
                q,
                q as f32 * scale,
                v,
                tolerance
            );
        }
    }
}

#[test]
fn serve_engine_matches_the_unbatched_primitive_pipeline() {
    // The engine coalesces queries into batches, shards the catalogue, routes lookups
    // through the hot-row cache and filters in TCAM mode — none of which may change a
    // single bit versus serving each query alone from the primitive APIs.
    let items = EmbeddingTable::new(256, 4, 21).unwrap();
    let model = Dlrm::new(DlrmConfig::tiny()).unwrap();
    let signature_bits = 64;
    let search_radius = 26;
    let lsh_seed = 5;
    let mut engine = ServeEngine::new(
        model.clone(),
        &items,
        ServeConfig {
            shards: 3,
            cache_capacity: 32,
            cache_policy: CachePolicy::Clock,
            cache_placement: CachePlacement::Router,
            shard_batching: false,
            precision: ServePrecision::Fp32,
            policy: BatchPolicy::new(16, 200.0).unwrap(),
            signature_bits,
            search_radius,
            lsh_seed,
        },
    )
    .unwrap();
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries: 300,
        num_users: 50,
        num_items: 256,
        zipf_exponent: 1.1,
        history_len: 10,
        offered_qps: 30_000.0,
        candidates_per_query: 40,
        top_k: 10,
        sparse_cardinalities: DlrmConfig::tiny().sparse_cardinalities,
        seed: 9,
        item_permutation_seed: None,
    })
    .unwrap();
    let outcome = engine.replay(&workload).unwrap();
    assert_eq!(outcome.responses.len(), 300);

    // Query-at-a-time reference from the primitives.
    let lsh = RandomHyperplaneLsh::new(4, signature_bits, lsh_seed).unwrap();
    let mut tcam = CmaArray::new(256, signature_bits, ArrayFom::paper_reference());
    for row in 0..256 {
        let signature = lsh.signature(items.lookup(row).unwrap()).unwrap();
        tcam.write_row_bits(row, &signature, signature_bits)
            .unwrap();
    }
    for response in &outcome.responses {
        let request = &workload.requests()[response.id as usize];
        let history: Vec<usize> = request.history.iter().map(|&row| row as usize).collect();
        let profile = items.pool(&history).unwrap();
        let matches = tcam
            .search(&lsh.signature(&profile).unwrap(), search_radius)
            .unwrap()
            .value;
        let score = model
            .predict(&DlrmSample {
                dense: profile,
                sparse: request.sparse.clone(),
            })
            .unwrap();
        assert_eq!(
            response.score.to_bits(),
            score.to_bits(),
            "query {}",
            response.id
        );
        assert_eq!(
            response.candidates,
            matches.len().min(request.query.candidates),
            "query {}",
            response.id
        );
    }
}

#[test]
fn threaded_runtime_matches_the_simulated_replay_bit_for_bit() {
    // The tentpole equivalence: the threaded runtime (bounded queue -> wall-clock
    // batcher -> worker pool of engine clones) re-batches the trace by *real* timing,
    // so batch boundaries and worker assignment differ run to run — and still no
    // output bit may move versus the virtual-clock single-pipeline replay.
    let items = EmbeddingTable::new(512, 4, 21).unwrap();
    let model = Dlrm::new(DlrmConfig::tiny()).unwrap();
    let config = ServeConfig {
        shards: 4,
        cache_capacity: 64,
        cache_policy: CachePolicy::Clock,
        cache_placement: CachePlacement::Router,
        shard_batching: false,
        precision: ServePrecision::Fp32,
        policy: BatchPolicy::new(16, 200.0).unwrap(),
        signature_bits: 64,
        search_radius: 26,
        lsh_seed: 5,
    };
    let mut engine = ServeEngine::new(model, &items, config).unwrap();
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries: 500,
        num_users: 80,
        num_items: 512,
        zipf_exponent: 1.2,
        history_len: 12,
        offered_qps: 100_000.0,
        candidates_per_query: 40,
        top_k: 10,
        sparse_cardinalities: DlrmConfig::tiny().sparse_cardinalities,
        seed: 13,
        item_permutation_seed: None,
    })
    .unwrap();
    let simulated = engine.replay(&workload).unwrap();
    for workers in [1, 4] {
        let threaded = replay_threaded(
            &engine,
            &workload,
            &ThreadedReplayConfig {
                runtime: RuntimeConfig::new(workers, 1024).unwrap(),
                speedup: f64::INFINITY, // back-to-back submits: maximum batching variance
                shed_on_full: false,
            },
        )
        .unwrap();
        assert_eq!(threaded.responses.len(), simulated.responses.len());
        let mut by_id = threaded.responses.clone();
        by_id.sort_unstable_by_key(|response| response.id);
        for (threaded_response, simulated_response) in by_id.iter().zip(simulated.responses.iter())
        {
            assert_eq!(threaded_response.id, simulated_response.id);
            assert_eq!(
                threaded_response.score.to_bits(),
                simulated_response.score.to_bits(),
                "query {} with {workers} workers",
                threaded_response.id
            );
            assert_eq!(
                threaded_response.candidates, simulated_response.candidates,
                "query {} with {workers} workers",
                threaded_response.id
            );
        }
        // The threaded report measures, the simulated one models — both must agree on
        // what was served.
        let stats = threaded
            .report
            .runtime
            .expect("threaded runs carry runtime stats");
        assert_eq!(stats.workers, workers);
        assert_eq!(stats.submitted, 500);
        assert_eq!(stats.rejected, 0);
        assert_eq!(threaded.report.telemetry.queries, 500);
        assert_eq!(threaded.report.telemetry.latency.count(), 500);
    }
}

#[test]
fn tracing_is_a_pure_observer_with_complete_stage_accounting() {
    // The observability equivalence: arming the tracer may not move one output bit
    // versus the untraced replay, and its accounting must be complete — every sampled
    // query lands exactly once in every stage histogram, stage p50s nest under the
    // end-to-end p50, and the Chrome export names every pipeline stage.
    let items = EmbeddingTable::new(512, 4, 21).unwrap();
    let config = ServeConfig {
        shards: 4,
        cache_capacity: 64,
        cache_policy: CachePolicy::Clock,
        cache_placement: CachePlacement::Router,
        shard_batching: false,
        precision: ServePrecision::Fp32,
        policy: BatchPolicy::new(16, 200.0).unwrap(),
        signature_bits: 64,
        search_radius: 26,
        lsh_seed: 5,
    };
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries: 500,
        num_users: 80,
        num_items: 512,
        zipf_exponent: 1.2,
        history_len: 12,
        offered_qps: 100_000.0,
        candidates_per_query: 40,
        top_k: 10,
        sparse_cardinalities: DlrmConfig::tiny().sparse_cardinalities,
        seed: 13,
        item_permutation_seed: None,
    })
    .unwrap();
    let mut plain = ServeEngine::new(
        Dlrm::new(DlrmConfig::tiny()).unwrap(),
        &items,
        config.clone(),
    )
    .unwrap();
    let expected = plain.replay(&workload).unwrap();
    assert!(expected.trace.is_empty(), "untraced replays log nothing");

    let mut traced_engine =
        ServeEngine::new(Dlrm::new(DlrmConfig::tiny()).unwrap(), &items, config).unwrap();
    traced_engine.enable_tracing(TraceConfig {
        sample_every: 4,
        seed: 9,
        capacity: 1024,
        slow_k: 5,
    });
    for workers in [0usize, 4] {
        // workers == 0 is the simulated replay; otherwise the threaded runtime.
        let outcome = if workers == 0 {
            traced_engine.replay(&workload).unwrap()
        } else {
            replay_threaded(
                &traced_engine,
                &workload,
                &ThreadedReplayConfig {
                    runtime: RuntimeConfig::new(workers, 1024).unwrap(),
                    speedup: f64::INFINITY,
                    shed_on_full: false,
                },
            )
            .unwrap()
        };
        let mut by_id = outcome.responses.clone();
        by_id.sort_unstable_by_key(|response| response.id);
        for (a, b) in by_id.iter().zip(&expected.responses) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "query {} ({workers} workers): traced vs untraced",
                a.id
            );
            assert_eq!(a.candidates, b.candidates, "query {}", a.id);
        }

        // Complete stage accounting: sampling is a pure function of (seed, id), so
        // both drivers sample the same queries, and each one lands exactly once in
        // every stage histogram.
        let stages = &outcome.report.telemetry.stages;
        assert!(stages.sampled > 0, "the workload must sample something");
        assert_eq!(stages.sampled, outcome.trace.sampled());
        assert_eq!(stages.total.count(), stages.sampled);
        for (name, histogram) in stages.stages() {
            assert_eq!(
                histogram.count(),
                stages.sampled,
                "{name} must record every sampled query"
            );
            assert!(
                histogram.quantile_us(0.50) <= stages.total.quantile_us(0.50),
                "{name} p50 must nest under the end-to-end p50"
            );
        }

        // The Chrome export carries a complete span tree: every stage name appears.
        let json = outcome.trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        for name in [
            "batch_form",
            "queue_wait",
            "cache_lookup",
            "nns_filter",
            "mlp_rank",
        ] {
            assert!(json.contains(name), "chrome export must name {name}");
        }
    }
}

#[test]
fn clustered_serving_matches_single_node_across_placements() {
    // The multi-node equivalence: catalogue partitions behind per-shard queues and
    // worker threads, lookups routed and gathered across shards, cross-shard traffic
    // charged to the RSC bus — and the ranked outputs still bit-identical to the
    // single-node engine, under both placement policies, fp32 and int8, through both
    // the simulated and threaded drivers.
    let items = EmbeddingTable::new(512, 4, 21).unwrap();
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries: 400,
        num_users: 80,
        num_items: 512,
        zipf_exponent: 1.2,
        history_len: 12,
        offered_qps: 100_000.0,
        candidates_per_query: 40,
        top_k: 10,
        sparse_cardinalities: DlrmConfig::tiny().sparse_cardinalities,
        seed: 17,
        item_permutation_seed: Some(3), // ids are not popularity-sorted
    })
    .unwrap();
    let histogram = workload.row_histogram(512).unwrap();
    for precision in [ServePrecision::Fp32, ServePrecision::Int8] {
        let config = ServeConfig {
            shards: 4,
            cache_capacity: 64,
            cache_policy: CachePolicy::Clock,
            cache_placement: CachePlacement::Router,
            shard_batching: false,
            precision,
            policy: BatchPolicy::new(16, 200.0).unwrap(),
            signature_bits: 64,
            search_radius: 26,
            lsh_seed: 5,
        };
        let mut single = ServeEngine::new(
            Dlrm::new(DlrmConfig::tiny()).unwrap(),
            &items,
            config.clone(),
        )
        .unwrap();
        let expected = single.replay(&workload).unwrap();
        for placement in [Placement::Range, Placement::Frequency] {
            let cluster = ClusterConfig {
                shards: 4,
                workers_per_shard: 2,
                queue_capacity: 32,
                placement,
                hot_replicas: 64,
                interconnect: Default::default(),
                resilience: None,
            };
            let (mut engine, handle) = ServeEngine::new_clustered(
                Dlrm::new(DlrmConfig::tiny()).unwrap(),
                &items,
                config.clone(),
                &cluster,
                Some(&histogram),
            )
            .unwrap();
            let outcome = engine.replay(&workload).unwrap();
            for (a, b) in outcome.responses.iter().zip(&expected.responses) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "query {} ({precision:?}, {placement:?})",
                    a.id
                );
                assert_eq!(a.candidates, b.candidates);
            }
            let stats = outcome
                .report
                .cluster
                .expect("clustered reports carry cluster stats");
            assert_eq!(stats.placement, placement.label());
            assert!(stats.fetches > 0);

            // Threaded driver over the same cluster: still bit-identical.
            let threaded = replay_threaded(
                &engine,
                &workload,
                &ThreadedReplayConfig {
                    runtime: RuntimeConfig::new(2, 1024).unwrap(),
                    speedup: f64::INFINITY,
                    shed_on_full: false,
                },
            )
            .unwrap();
            let mut by_id = threaded.responses.clone();
            by_id.sort_unstable_by_key(|response| response.id);
            for (a, b) in by_id.iter().zip(&expected.responses) {
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "threaded query {} ({precision:?}, {placement:?})",
                    a.id
                );
            }
            assert!(threaded.report.cluster.is_some());
            handle.shutdown().unwrap();
        }
    }
}

#[test]
fn quantized_rows_feed_the_packed_table_unchanged() {
    let table = EmbeddingTable::new(50, 16, 9).unwrap();
    let quantized = QuantizedTable::from_table(&table);
    let packed = PackedTable::from_rows(quantized.iter_rows(), 16).unwrap();
    assert_eq!(packed.rows(), 50);
    for i in 0..50 {
        assert_eq!(
            unpack_embedding(packed.row_words(i), 16).as_slice(),
            quantized.row(i).unwrap()
        );
    }
}
