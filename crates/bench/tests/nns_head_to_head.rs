//! TCAM-vs-exact nearest-neighbour head-to-head on a Zipf query stream — the
//! regression test the ROADMAP's NNS batch-filtering item left open.
//!
//! The serving engine filters candidates with a fixed-radius Hamming search over LSH
//! signatures in TCAM mode; the software baseline is exact cosine top-k. This test pins
//! the trade both ways on a skewed (Zipf-1.2) query stream:
//!
//! * **recall floor** — the TCAM candidate set must contain at least 90 % of the exact
//!   cosine top-10, averaged over the stream (measured 0.962 at radius 100/256 on this
//!   catalogue; the floor leaves margin without letting a routing or signature bug
//!   hide);
//! * **filtering power** — the candidate set must stay a small fraction of the
//!   catalogue, otherwise the O(1) TCAM search saves nothing downstream;
//! * **hardware/software agreement** — the TCAM match set must equal the software
//!   `within_radius` reference over the same signatures, query by query.

use imars_datasets::ZipfSampler;
use imars_device::characterization::ArrayFom;
use imars_fabric::cma::CmaArray;
use imars_recsys::lsh::RandomHyperplaneLsh;
use imars_recsys::nns::{ExactIndex, Metric};
use imars_recsys::EmbeddingTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_ITEMS: usize = 2000;
const DIM: usize = 32;
const SIGNATURE_BITS: usize = 256;
// Tuned on this catalogue: recall@10 ≈ 0.96 while passing ≈ 5 % of the items (the
// paper's 112 radius passes ≈ 18 % here — this catalogue is smaller than its target).
const RADIUS: u32 = 100;
const QUERIES: usize = 250;
const TOP_K: usize = 10;

#[test]
fn tcam_filtering_tracks_exact_cosine_topk_on_a_zipf_stream() {
    let items = EmbeddingTable::new(NUM_ITEMS, DIM, 71).unwrap();
    let rows: Vec<Vec<f32>> = (0..NUM_ITEMS)
        .map(|row| items.lookup(row).unwrap().to_vec())
        .collect();
    let exact = ExactIndex::new(DIM, rows.clone()).unwrap();

    let lsh = RandomHyperplaneLsh::paper_signature(DIM, 7).unwrap();
    assert_eq!(lsh.signature_bits(), SIGNATURE_BITS);
    let mut tcam = CmaArray::new(NUM_ITEMS, SIGNATURE_BITS, ArrayFom::paper_reference());
    let signatures: Vec<Vec<u64>> = rows.iter().map(|row| lsh.signature(row).unwrap()).collect();
    for (row, signature) in signatures.iter().enumerate() {
        tcam.write_row_bits(row, signature, SIGNATURE_BITS).unwrap();
    }

    // Zipf query stream: queries are noisy views of popularity-sampled items — the
    // "users who interacted with a hot item" shape the serve replay generates.
    let zipf = ZipfSampler::new(NUM_ITEMS, 1.2);
    let mut rng = StdRng::seed_from_u64(2025);
    let queries: Vec<Vec<f32>> = (0..QUERIES)
        .map(|_| {
            let anchor = zipf.sample(&mut rng);
            items
                .lookup(anchor)
                .unwrap()
                .iter()
                .map(|&v| v + rng.gen_range(-0.15..0.15f32))
                .collect()
        })
        .collect();

    let query_signatures: Vec<Vec<u64>> = queries
        .iter()
        .map(|query| lsh.signature(query).unwrap())
        .collect();
    let search = tcam.search_batch(&query_signatures, RADIUS).unwrap();
    assert_eq!(search.value.len(), QUERIES);
    // The batch search serializes on the array: QUERIES search charges.
    let single = tcam.search(&query_signatures[0], RADIUS).unwrap();
    assert!(
        (search.cost.energy_pj - single.cost.energy_pj * QUERIES as f64).abs() < 1e-6,
        "batched TCAM search must charge one search FOM per query"
    );

    let mut recall_sum = 0.0f64;
    let mut candidate_sum = 0usize;
    for (query_index, (query, candidates)) in queries.iter().zip(&search.value).enumerate() {
        // Hardware/software agreement on the same signatures.
        let reference =
            RandomHyperplaneLsh::within_radius(&query_signatures[query_index], &signatures, RADIUS);
        assert_eq!(
            candidates, &reference,
            "query {query_index}: TCAM and software radius search disagree"
        );
        candidate_sum += candidates.len();

        let top = exact.top_k(query, TOP_K, Metric::Cosine).unwrap();
        let hit = top.iter().filter(|item| candidates.contains(item)).count();
        recall_sum += hit as f64 / TOP_K as f64;
    }
    let recall = recall_sum / QUERIES as f64;
    let mean_candidates = candidate_sum as f64 / QUERIES as f64;
    assert!(
        recall >= 0.90,
        "recall@{TOP_K} {recall:.3} fell below the 0.90 floor (radius {RADIUS}/{SIGNATURE_BITS})"
    );
    assert!(
        mean_candidates <= NUM_ITEMS as f64 * 0.10,
        "TCAM radius passes {mean_candidates:.0} candidates on average — no filtering power"
    );
    assert!(
        mean_candidates >= 1.0,
        "radius too tight: the filter starves the ranker"
    );
}
