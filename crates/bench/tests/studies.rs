//! Cross-crate guarantees of the evaluation subsystem:
//!
//! * the sweep/study runner is deterministic — same seed, same inputs → byte-identical
//!   report JSON;
//! * the accuracy study's fp32-vs-int8 score deltas stay within the analytic bound
//!   derived from `QuantizedTable::max_quantization_error`;
//! * the NNS study's functional TCAM matches equal the software fixed-radius reference
//!   and its headline speedup stays in the paper's order of magnitude;
//! * every study driver renders rows the JSON writer round-trips through the gate's
//!   parser.

use imars_bench::gate::Json;
use imars_core::accuracy::{
    criteo_accuracy, movielens_accuracy, CriteoAccuracyConfig, MovieLensAccuracyConfig,
};
use imars_core::et_lookup::{table3_comparisons, EtLookupModel};
use imars_core::nns_eval::{run_nns_study, NnsEvalConfig};
use imars_core::system::{Study, StudyRow, SweepGrid};
use imars_device::characterization::ArrayFom;
use imars_gpu::GpuModel;

/// Build a representative study twice from the same seed and compare the serialized
/// bytes. The rows come from a real (seeded) NNS run plus a sweep grid, so this pins
/// determinism of the whole chain: RNG seeding, float formatting, map ordering.
#[test]
fn study_json_is_byte_identical_for_a_seed() {
    let build = || {
        let mut study = Study::new("determinism_probe", 77);
        study.note("purpose", "same seed -> byte-identical bytes");
        let nns = run_nns_study(
            &NnsEvalConfig {
                seed: 77,
                ..NnsEvalConfig::small()
            },
            &ArrayFom::paper_reference(),
        )
        .expect("valid config");
        for point in &nns.points {
            study.push(point.study_row());
        }
        for point in SweepGrid::new()
            .axis("a", &[1.0, 2.0])
            .axis("b", &[0.5, 0.25])
            .points()
        {
            let mut row = StudyRow::new();
            for (name, value) in &point {
                row = row.config_num(name, *value);
            }
            study.push(row.metric("sum", point.iter().map(|(_, v)| v).sum()));
        }
        study.to_json()
    };
    let first = build();
    let second = build();
    assert_eq!(first, second);
}

/// Study JSON must parse with the same minimal parser the bench gate uses, so the CI
/// artifacts stay machine-readable end to end.
#[test]
fn study_json_round_trips_through_the_gate_parser() {
    let mut study = Study::new("parser_probe", 1);
    study.note("k", "v with \"quotes\" and \\ backslash");
    let comparisons = table3_comparisons(&EtLookupModel::paper_reference(), &GpuModel::gtx_1080())
        .expect("paper workloads map");
    for comparison in &comparisons {
        study.push(comparison.study_row());
    }
    let parsed = Json::parse(&study.to_json()).expect("well-formed JSON");
    assert_eq!(
        parsed.get("study").and_then(Json::as_str),
        Some("parser_probe")
    );
    let rows = parsed.get("rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 3);
    for row in rows {
        let metrics = row.get("metrics").expect("metrics object");
        assert!(
            metrics
                .get("latency_speedup")
                .and_then(Json::as_f64)
                .unwrap()
                > 1.0
        );
    }
}

/// The fp32-vs-int8 dot-product deltas of the accuracy study must respect the analytic
/// bound `|⟨u,v⟩ − ⟨û,v̂⟩| ≤ ‖u‖₁·ε_v + ‖v̂‖₁·ε_u` built from
/// `QuantizedTable::max_quantization_error`.
#[test]
fn accuracy_deltas_match_quantization_error_bounds() {
    let study = movielens_accuracy(&MovieLensAccuracyConfig::small()).expect("study runs");
    assert!(study.deltas_within_bound);
    assert!(
        study.max_score_delta > 0.0,
        "quantization must move something"
    );
    assert!(
        study.max_score_delta <= study.score_delta_bound + 1e-4,
        "observed {} vs bound {}",
        study.max_score_delta,
        study.score_delta_bound
    );
    // And the bound is meaningful, not vacuous: within two orders of magnitude.
    assert!(study.score_delta_bound < study.max_score_delta * 100.0);
}

/// The DLRM side of the same guarantee: int8 embedding round-tripping moves CTR
/// predictions by a bounded amount and barely moves the AUC.
#[test]
fn criteo_int8_predictions_stay_bounded() {
    let study = criteo_accuracy(&CriteoAccuracyConfig::small()).expect("study runs");
    assert!(study.max_prediction_delta < 0.25);
    assert!((study.auc_fp32 - study.auc_int8).abs() < 0.05);
    assert!(study.max_quantization_error > 0.0);
}

/// The modeled TCAM-vs-GPU-LSH speedup must stay in the paper's order of magnitude
/// (reported: 3.8e4 latency) at the MovieLens scale.
#[test]
fn nns_speedup_matches_paper_order_of_magnitude() {
    let study = run_nns_study(
        &NnsEvalConfig {
            queries: 8,
            ..NnsEvalConfig::movielens_scale()
        },
        &ArrayFom::paper_reference(),
    )
    .expect("valid config");
    let speedup = study.tcam_latency_speedup();
    assert!(
        speedup > 3.8e3 && speedup < 3.8e5,
        "tcam latency speedup {speedup:.0}x vs paper 3.8e4"
    );
    // At the paper's serving radius the fixed-radius search keeps high recall while
    // passing a few percent of the catalogue.
    let at_100 = study
        .points
        .iter()
        .find(|p| p.radius == 100)
        .expect("radius 100 swept");
    assert!(at_100.recall_at_k >= 0.9, "recall {}", at_100.recall_at_k);
    assert!(
        at_100.candidate_fraction <= 0.15,
        "candidates {}",
        at_100.candidate_fraction
    );
}

/// Table III comparisons bracket the paper's reported MovieLens factors between the
/// worst-case (serialized) and spread accountings.
#[test]
fn table3_brackets_hold_cross_crate() {
    let comparisons = table3_comparisons(&EtLookupModel::paper_reference(), &GpuModel::gtx_1080())
        .expect("paper workloads map");
    for comparison in &comparisons[..2] {
        let paper = comparison.paper_latency_speedup.expect("tabulated");
        assert!(comparison.latency_speedup_worst() <= paper);
        assert!(paper <= comparison.latency_speedup_spread());
    }
}
