//! Self-contained benchmark harness for the iMARS reproduction.
//!
//! The build environment has no crates.io access, so instead of criterion this crate
//! ships a small criterion-style harness: warmup, automatic iteration calibration,
//! multiple timed samples, median/mean statistics, and a machine-readable JSON summary
//! per suite so successive runs form a performance trajectory.
//!
//! Benches are `harness = false` binaries:
//!
//! ```no_run
//! use imars_bench::{black_box, Harness};
//!
//! let mut harness = Harness::from_args("my_suite");
//! let mut acc = 0u64;
//! harness.bench("sum", || {
//!     acc = acc.wrapping_add(black_box(1));
//! });
//! harness.finish();
//! ```
//!
//! Running `cargo bench --bench <suite>` executes the full measurement; appending
//! `-- --test` (as CI does) switches to a one-iteration smoke run that only checks the
//! benches still execute. The JSON summary is written to
//! `target/imars-bench/<suite>.json`, or to the path in the `IMARS_BENCH_OUT`
//! environment variable when set.

use std::fmt::Write as _;
use std::time::Instant;

pub mod gate;

pub use std::hint::black_box;

/// Target wall-clock time per timed sample.
const TARGET_SAMPLE_NS: f64 = 20_000_000.0;
/// Timed samples per benchmark (the median is the headline number).
const SAMPLES: usize = 11;

/// One benchmark's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name within the suite.
    pub name: String,
    /// Iterations executed per timed sample.
    pub iters_per_sample: u64,
    /// Nanoseconds per iteration, one entry per sample.
    pub sample_ns: Vec<f64>,
}

impl BenchResult {
    /// Median nanoseconds per iteration (the robust headline statistic).
    pub fn median_ns(&self) -> f64 {
        let mut sorted = self.sample_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    }

    /// Mean nanoseconds per iteration.
    pub fn mean_ns(&self) -> f64 {
        self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64
    }

    /// Fastest sample, nanoseconds per iteration.
    pub fn min_ns(&self) -> f64 {
        self.sample_ns.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// An auxiliary derived metric recorded alongside the timings (e.g. a speedup ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name.
    pub name: String,
    /// Metric value.
    pub value: f64,
    /// Unit label ("x", "ns", "GB/s", ...).
    pub unit: String,
}

/// A benchmark suite: runs benches, prints a table, writes the JSON summary.
#[derive(Debug)]
pub struct Harness {
    suite: String,
    smoke: bool,
    results: Vec<BenchResult>,
    metrics: Vec<Metric>,
}

impl Harness {
    /// Build a harness for `suite`, reading the process arguments: `--test` (what
    /// `cargo bench -- --test` forwards) selects the one-iteration smoke mode; the
    /// `--bench` flag cargo passes to `harness = false` binaries is accepted and
    /// ignored, as are any further unknown arguments.
    pub fn from_args(suite: &str) -> Self {
        let smoke = std::env::args().skip(1).any(|arg| arg == "--test");
        Self::new(suite, smoke)
    }

    /// Build a harness explicitly (used by tests).
    pub fn new(suite: &str, smoke: bool) -> Self {
        Self {
            suite: suite.to_string(),
            smoke,
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Whether this run is a smoke run (one iteration, no statistics).
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// The benches recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The metrics recorded so far, in execution order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Time `f`, record the result, and return the median nanoseconds per iteration.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> f64 {
        let (iters, sample_count) = if self.smoke {
            (1u64, 1usize)
        } else {
            // Warmup + calibration: run until we can estimate the per-iteration cost.
            let mut calibration_iters = 1u64;
            let per_iter_ns = loop {
                let start = Instant::now();
                for _ in 0..calibration_iters {
                    f();
                }
                let elapsed = start.elapsed().as_nanos() as f64;
                if elapsed > 5_000_000.0 || calibration_iters >= 1 << 24 {
                    break elapsed / calibration_iters as f64;
                }
                calibration_iters *= 4;
            };
            let iters = (TARGET_SAMPLE_NS / per_iter_ns.max(0.1)).clamp(1.0, 1e9) as u64;
            (iters.max(1), SAMPLES)
        };

        let mut sample_ns = Vec::with_capacity(sample_count);
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let result = BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            sample_ns,
        };
        let median = result.median_ns();
        println!(
            "{:<44} median {:>12.1} ns/iter   (mean {:>12.1}, min {:>12.1}, {} iters x {} samples)",
            format!("{}/{}", self.suite, name),
            median,
            result.mean_ns(),
            result.min_ns(),
            result.iters_per_sample,
            result.sample_ns.len(),
        );
        self.results.push(result);
        median
    }

    /// Record an auxiliary metric (e.g. a speedup derived from two benches).
    pub fn metric(&mut self, name: &str, value: f64, unit: &str) {
        println!(
            "{:<44} {:>12.2} {}",
            format!("{}/{}", self.suite, name),
            value,
            unit
        );
        self.metrics.push(Metric {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
    }

    /// The JSON summary of every recorded bench and metric.
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\n  \"suite\": \"{}\",\n  \"smoke\": {},\n  \"results\": [",
            escape(&self.suite),
            self.smoke
        );
        for (i, result) in self.results.iter().enumerate() {
            let _ = write!(
                json,
                "{}\n    {{\"name\": \"{}\", \"median_ns_per_iter\": {:.3}, \"mean_ns_per_iter\": {:.3}, \"min_ns_per_iter\": {:.3}, \"iters_per_sample\": {}, \"samples\": {}}}",
                if i == 0 { "" } else { "," },
                escape(&result.name),
                result.median_ns(),
                result.mean_ns(),
                result.min_ns(),
                result.iters_per_sample,
                result.sample_ns.len(),
            );
        }
        let _ = write!(json, "\n  ],\n  \"metrics\": [");
        for (i, metric) in self.metrics.iter().enumerate() {
            let _ = write!(
                json,
                "{}\n    {{\"name\": \"{}\", \"value\": {:.6}, \"unit\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                escape(&metric.name),
                metric.value,
                escape(&metric.unit),
            );
        }
        json.push_str("\n  ]\n}\n");
        json
    }

    /// Print the summary and write the JSON file. Returns the path written to.
    pub fn finish(self) -> std::path::PathBuf {
        let path = match std::env::var_os("IMARS_BENCH_OUT") {
            Some(path) => std::path::PathBuf::from(path),
            None => {
                let dir = std::path::Path::new("target").join("imars-bench");
                let _ = std::fs::create_dir_all(&dir);
                dir.join(format!("{}.json", self.suite))
            }
        };
        if let Err(error) = std::fs::write(&path, self.to_json()) {
            eprintln!(
                "warning: could not write bench summary to {}: {error}",
                path.display()
            );
        } else {
            println!("bench summary written to {}", path.display());
        }
        path
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mean_are_computed() {
        let result = BenchResult {
            name: "x".into(),
            iters_per_sample: 1,
            sample_ns: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(result.median_ns(), 2.0);
        assert_eq!(result.mean_ns(), 2.0);
        assert_eq!(result.min_ns(), 1.0);
        let even = BenchResult {
            name: "y".into(),
            iters_per_sample: 1,
            sample_ns: vec![1.0, 2.0, 3.0, 10.0],
        };
        assert_eq!(even.median_ns(), 2.5);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut harness = Harness::new("test_suite", true);
        let mut calls = 0u64;
        harness.bench("noop", || calls += 1);
        assert_eq!(calls, 1);
        assert!(harness.is_smoke());
        assert_eq!(harness.results.len(), 1);
    }

    #[test]
    fn json_summary_contains_results_and_metrics() {
        let mut harness = Harness::new("suite_a", true);
        harness.bench("bench_one", || {});
        harness.metric("speedup", 3.5, "x");
        let json = harness.to_json();
        assert!(json.contains("\"suite\": \"suite_a\""));
        assert!(json.contains("\"name\": \"bench_one\""));
        assert!(json.contains("\"median_ns_per_iter\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"unit\": \"x\""));
        // No trailing commas and balanced brackets (cheap well-formedness checks).
        assert!(!json.contains(",\n  ]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
