//! placeholder
