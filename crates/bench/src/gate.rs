//! The bench regression gate: compare current bench JSON against committed baselines.
//!
//! The harness writes one JSON summary per suite (`target/imars-bench/<suite>.json`);
//! baselines measured on the reference container are checked in under
//! `crates/bench/baselines/`. The gate loads both sides, matches benches by
//! `suite/name`, and fails when a median regresses past the tolerance (default ±30 %)
//! or a baseline bench disappeared. Smoke-mode current files (one iteration, no
//! statistics — what `cargo bench -- --test` writes) are compared for *coverage* only:
//! a single-iteration timing is noise, so its rows report `skip (smoke)` instead of a
//! ratio.
//!
//! The vendored serde has no deserializer backend, so this module carries a minimal
//! recursive-descent JSON parser — enough for the harness's own output format (and any
//! well-formed JSON; it is not a validator of exotic corner cases).

use std::fmt::Write as _;

/// A parsed JSON value (objects keep key order; duplicate keys keep the first).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(key) => key,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                if !fields.iter().any(|(k, _): &(String, Json)| *k == key) {
                    fields.push((key, value));
                }
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (the input is a &str, so boundaries
                        // are valid).
                        let start = *pos;
                        *pos += 1;
                        while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                            *pos += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"),
                        );
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

/// One suite's bench medians, as loaded from a harness JSON summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResults {
    /// Suite name (`"recsys_kernels"`, ...).
    pub suite: String,
    /// Whether the file came from a one-iteration smoke run (timings are noise).
    pub smoke: bool,
    /// `(bench name, median ns/iter)` in file order.
    pub benches: Vec<(String, f64)>,
}

/// Parse a harness summary. Returns `Ok(None)` for JSON files with a different schema
/// (e.g. the serve-telemetry reports that share the output directory) so callers can
/// skip them.
///
/// # Errors
///
/// Returns a description of the problem for unparseable JSON or a harness file with
/// malformed results.
pub fn parse_suite(text: &str) -> Result<Option<SuiteResults>, String> {
    let root = Json::parse(text)?;
    let Some(results) = root.get("results").and_then(Json::as_arr) else {
        return Ok(None); // different schema: not a harness summary
    };
    let suite = root
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("harness summary missing \"suite\"")?
        .to_string();
    let smoke = root.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    let mut benches = Vec::with_capacity(results.len());
    for result in results {
        let name = result
            .get("name")
            .and_then(Json::as_str)
            .ok_or("bench result missing \"name\"")?
            .to_string();
        let median = result
            .get("median_ns_per_iter")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("bench {name:?} missing \"median_ns_per_iter\""))?;
        benches.push((name, median));
    }
    Ok(Some(SuiteResults {
        suite,
        smoke,
        benches,
    }))
}

/// Per-bench verdict of the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within tolerance.
    Ok,
    /// Faster than the baseline beyond the tolerance (worth refreshing the baseline).
    Improved,
    /// Slower than the baseline beyond the tolerance — the gate fails.
    Regressed,
    /// Present in the baseline but absent from the current run — the gate fails.
    Missing,
    /// The whole current suite is missing — the gate fails.
    SuiteMissing,
    /// Current run is smoke mode: coverage checked, timing comparison skipped.
    SkippedSmoke,
}

impl GateStatus {
    /// Whether this row fails the gate.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            GateStatus::Regressed | GateStatus::Missing | GateStatus::SuiteMissing
        )
    }

    fn label(self) -> &'static str {
        match self {
            GateStatus::Ok => "ok",
            GateStatus::Improved => "improved",
            GateStatus::Regressed => "REGRESSED",
            GateStatus::Missing => "MISSING",
            GateStatus::SuiteMissing => "SUITE MISSING",
            GateStatus::SkippedSmoke => "skip (smoke)",
        }
    }
}

/// One row of the gate's diff table.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// `suite/bench` the row compares.
    pub name: String,
    /// Baseline median ns/iter.
    pub baseline_ns: f64,
    /// Current median ns/iter (`None` when missing or suite-missing).
    pub current_ns: Option<f64>,
    /// The verdict.
    pub status: GateStatus,
}

impl GateRow {
    /// current / baseline (`None` when not comparable).
    pub fn ratio(&self) -> Option<f64> {
        self.current_ns
            .map(|current| current / self.baseline_ns.max(f64::MIN_POSITIVE))
    }
}

/// The gate's outcome: the full diff table and the pass/fail verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// One row per baseline bench (plus `new` rows for unbaselined current benches).
    pub rows: Vec<GateRow>,
    /// `true` when no row is a failure.
    pub passed: bool,
}

impl GateOutcome {
    /// Render the diff table.
    pub fn table(&self, tolerance: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<48} {:>14} {:>14} {:>8}  status",
            "bench", "baseline ns", "current ns", "ratio"
        );
        for row in &self.rows {
            let current = row
                .current_ns
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}"));
            let ratio = row
                .ratio()
                .map_or_else(|| "-".to_string(), |r| format!("{r:.2}x"));
            let _ = writeln!(
                out,
                "{:<48} {:>14.1} {:>14} {:>8}  {}",
                row.name,
                row.baseline_ns,
                current,
                ratio,
                row.status.label()
            );
        }
        let _ = writeln!(
            out,
            "gate: {} rows, tolerance +/-{:.0}% -> {}",
            self.rows.len(),
            tolerance * 100.0,
            if self.passed { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Compare current suites against baselines. Every baseline bench must exist in the
/// current run; timings must stay within `tolerance` (a regression is
/// `current > baseline * (1 + tolerance)`). Smoke-mode current suites are coverage-only.
/// Current benches with no baseline are reported as informational `new` rows (status
/// [`GateStatus::Ok`]).
pub fn run_gate(
    baselines: &[SuiteResults],
    currents: &[SuiteResults],
    tolerance: f64,
) -> GateOutcome {
    let mut rows = Vec::new();
    for baseline in baselines {
        let current_suite = currents.iter().find(|c| c.suite == baseline.suite);
        for (bench, baseline_ns) in &baseline.benches {
            let name = format!("{}/{}", baseline.suite, bench);
            let row = match current_suite {
                None => GateRow {
                    name,
                    baseline_ns: *baseline_ns,
                    current_ns: None,
                    status: GateStatus::SuiteMissing,
                },
                Some(current) => match current.benches.iter().find(|(n, _)| n == bench) {
                    None => GateRow {
                        name,
                        baseline_ns: *baseline_ns,
                        current_ns: None,
                        status: GateStatus::Missing,
                    },
                    Some((_, current_ns)) => {
                        let status = if current.smoke {
                            GateStatus::SkippedSmoke
                        } else if *current_ns > baseline_ns * (1.0 + tolerance) {
                            GateStatus::Regressed
                        } else if *current_ns < baseline_ns / (1.0 + tolerance) {
                            GateStatus::Improved
                        } else {
                            GateStatus::Ok
                        };
                        GateRow {
                            name,
                            baseline_ns: *baseline_ns,
                            current_ns: Some(*current_ns),
                            status,
                        }
                    }
                },
            };
            rows.push(row);
        }
    }
    // Informational: current benches nobody baselined yet.
    for current in currents {
        let baseline_suite = baselines.iter().find(|b| b.suite == current.suite);
        for (bench, current_ns) in &current.benches {
            let known = baseline_suite
                .map(|b| b.benches.iter().any(|(n, _)| n == bench))
                .unwrap_or(false);
            if !known {
                rows.push(GateRow {
                    name: format!("{}/{} (new)", current.suite, bench),
                    baseline_ns: 0.0,
                    current_ns: Some(*current_ns),
                    status: GateStatus::Ok,
                });
            }
        }
    }
    let passed = !rows.iter().any(|row| row.status.is_failure());
    GateOutcome { rows, passed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_round_trips_the_harness_schema() {
        let text = r#"{
  "suite": "demo \"quoted\"",
  "smoke": false,
  "results": [
    {"name": "a", "median_ns_per_iter": 120.500, "samples": 11},
    {"name": "b", "median_ns_per_iter": 3.25e2, "samples": 11}
  ],
  "metrics": [{"name": "speedup", "value": 3.5, "unit": "x"}]
}"#;
        let json = Json::parse(text).unwrap();
        assert_eq!(
            json.get("suite").and_then(Json::as_str),
            Some("demo \"quoted\"")
        );
        assert_eq!(json.get("smoke").and_then(Json::as_bool), Some(false));
        let results = json.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[1].get("median_ns_per_iter").and_then(Json::as_f64),
            Some(325.0)
        );
        let suite = parse_suite(text).unwrap().unwrap();
        assert_eq!(suite.suite, "demo \"quoted\"");
        assert_eq!(
            suite.benches,
            vec![("a".to_string(), 120.5), ("b".to_string(), 325.0)]
        );
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1,]",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{1: 2}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        assert!(Json::parse("null").is_ok());
        assert!(Json::parse("[true, false, null, -1.5e-3, \"\\u0041\\n\"]").is_ok());
    }

    #[test]
    fn non_harness_schema_is_skipped_not_an_error() {
        // The serve telemetry reports share the output directory but have no "results".
        let telemetry = r#"{"suite": "serve_replay", "queries": 100, "latency_us": {"p50": 1.0}}"#;
        assert_eq!(parse_suite(telemetry).unwrap(), None);
        assert!(parse_suite("{nope").is_err());
    }

    fn suite(name: &str, smoke: bool, benches: &[(&str, f64)]) -> SuiteResults {
        SuiteResults {
            suite: name.to_string(),
            smoke,
            benches: benches.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn gate_passes_identical_runs_and_fails_a_2x_regression() {
        let baselines = vec![suite(
            "kernels",
            false,
            &[("pool", 100.0), ("gather", 50.0)],
        )];
        let same = vec![suite(
            "kernels",
            false,
            &[("pool", 100.0), ("gather", 50.0)],
        )];
        let outcome = run_gate(&baselines, &same, 0.30);
        assert!(
            outcome.passed,
            "identical runs must pass:\n{}",
            outcome.table(0.30)
        );

        let regressed = vec![suite(
            "kernels",
            false,
            &[("pool", 200.0), ("gather", 50.0)],
        )];
        let outcome = run_gate(&baselines, &regressed, 0.30);
        assert!(!outcome.passed, "a 2x regression must fail");
        let row = outcome
            .rows
            .iter()
            .find(|r| r.name == "kernels/pool")
            .unwrap();
        assert_eq!(row.status, GateStatus::Regressed);
        assert!((row.ratio().unwrap() - 2.0).abs() < 1e-9);
        assert!(outcome.table(0.30).contains("REGRESSED"));
        assert!(outcome.table(0.30).contains("FAIL"));
    }

    #[test]
    fn gate_tolerance_brackets_the_boundary() {
        let baselines = vec![suite("s", false, &[("b", 100.0)])];
        // +29% passes, +31% fails at 30% tolerance.
        assert!(run_gate(&baselines, &[suite("s", false, &[("b", 129.0)])], 0.30).passed);
        assert!(!run_gate(&baselines, &[suite("s", false, &[("b", 131.0)])], 0.30).passed);
        // A big improvement passes but is labeled.
        let outcome = run_gate(&baselines, &[suite("s", false, &[("b", 40.0)])], 0.30);
        assert!(outcome.passed);
        assert_eq!(outcome.rows[0].status, GateStatus::Improved);
    }

    #[test]
    fn gate_fails_on_missing_benches_or_suites() {
        let baselines = vec![suite("s", false, &[("kept", 10.0), ("dropped", 10.0)])];
        let outcome = run_gate(&baselines, &[suite("s", false, &[("kept", 10.0)])], 0.30);
        assert!(!outcome.passed);
        assert!(outcome.rows.iter().any(|r| r.status == GateStatus::Missing));
        let outcome = run_gate(&baselines, &[], 0.30);
        assert!(!outcome.passed);
        assert!(outcome
            .rows
            .iter()
            .all(|r| r.status == GateStatus::SuiteMissing));
    }

    #[test]
    fn gate_skips_timing_for_smoke_runs_but_still_checks_coverage() {
        let baselines = vec![suite("s", false, &[("b", 100.0)])];
        // A wild smoke timing passes (coverage only)...
        let outcome = run_gate(&baselines, &[suite("s", true, &[("b", 10_000.0)])], 0.30);
        assert!(outcome.passed);
        assert_eq!(outcome.rows[0].status, GateStatus::SkippedSmoke);
        // ...but a smoke run that lost a bench still fails.
        let outcome = run_gate(&baselines, &[suite("s", true, &[])], 0.30);
        assert!(!outcome.passed);
    }

    #[test]
    fn new_benches_are_informational() {
        let baselines = vec![suite("s", false, &[("old", 10.0)])];
        let outcome = run_gate(
            &baselines,
            &[suite("s", false, &[("old", 10.0), ("brand_new", 5.0)])],
            0.30,
        );
        assert!(outcome.passed);
        assert!(outcome
            .rows
            .iter()
            .any(|r| r.name.contains("brand_new") && r.name.contains("new")));
    }
}
