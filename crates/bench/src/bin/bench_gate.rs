//! CI bench-regression gate.
//!
//! Compares the bench JSON summaries of the current run against the baselines checked
//! in under `crates/bench/baselines/` and exits nonzero on a regression beyond the
//! tolerance (default ±30 %) or a disappeared bench. Run from the workspace root:
//!
//! ```text
//! cargo bench --bench recsys_kernels && cargo bench --bench end_to_end
//! cargo run --release -p imars-bench --bin bench_gate
//! ```
//!
//! Flags:
//!
//! * `--baselines DIR`  — baseline directory (default `crates/bench/baselines`)
//! * `--current DIR`    — current-run directory; repeatable, first hit per suite wins
//!   (defaults: `crates/bench/target/imars-bench`, then `target/imars-bench` — cargo
//!   runs bench binaries with the package as CWD, so their JSON lands under the
//!   package-relative target path)
//! * `--tolerance F`    — allowed fractional slowdown (default `0.30`)
//! * `--update`         — instead of gating, copy the current harness summaries into
//!   the baseline directory (refreshing baselines on the reference machine)
//!
//! Smoke-mode summaries (`cargo bench -- --test`) gate coverage only: their
//! one-iteration timings are noise, so rows show `skip (smoke)`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use imars_bench::gate::{parse_suite, run_gate, SuiteResults};

struct Options {
    baselines: PathBuf,
    currents: Vec<PathBuf>,
    tolerance: f64,
    update: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut baselines = PathBuf::from("crates/bench/baselines");
    let mut currents: Vec<PathBuf> = Vec::new();
    let mut tolerance = 0.30f64;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baselines" => {
                baselines = PathBuf::from(args.next().ok_or("--baselines needs a directory")?);
            }
            "--current" => {
                currents.push(PathBuf::from(
                    args.next().ok_or("--current needs a directory")?,
                ));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !tolerance.is_finite() || tolerance < 0.0 {
                    return Err(format!(
                        "--tolerance must be finite and >= 0, got {tolerance}"
                    ));
                }
            }
            "--update" => update = true,
            "--help" | "-h" => {
                println!(
                    "bench_gate [--baselines DIR] [--current DIR]... [--tolerance F] [--update]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if currents.is_empty() {
        currents = vec![
            PathBuf::from("crates/bench/target/imars-bench"),
            PathBuf::from("target/imars-bench"),
        ];
    }
    Ok(Options {
        baselines,
        currents,
        tolerance,
        update,
    })
}

/// Load every harness-schema JSON in `dir` (skipping other schemas, e.g. serve
/// telemetry). A missing directory is an empty set, not an error — the gate itself
/// reports missing suites.
fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, SuiteResults)>, String> {
    let mut suites = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(suites),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        match parse_suite(&text).map_err(|e| format!("parse {}: {e}", path.display()))? {
            Some(suite) => suites.push((path, suite)),
            None => println!(
                "note: skipping {} (not a bench-harness summary)",
                path.display()
            ),
        }
    }
    Ok(suites)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(error) => {
            eprintln!("bench_gate: {error}");
            return ExitCode::FAILURE;
        }
    };

    // First directory containing a suite wins, so later defaults don't shadow
    // freshly-written results.
    let mut currents: Vec<SuiteResults> = Vec::new();
    let mut current_paths: Vec<PathBuf> = Vec::new();
    for dir in &options.currents {
        match load_dir(dir) {
            Ok(loaded) => {
                for (path, suite) in loaded {
                    if !currents.iter().any(|s| s.suite == suite.suite) {
                        currents.push(suite);
                        current_paths.push(path);
                    }
                }
            }
            Err(error) => {
                eprintln!("bench_gate: {error}");
                return ExitCode::FAILURE;
            }
        }
    }

    if options.update {
        if let Err(error) = std::fs::create_dir_all(&options.baselines) {
            eprintln!(
                "bench_gate: create {}: {error}",
                options.baselines.display()
            );
            return ExitCode::FAILURE;
        }
        let mut wrote = 0usize;
        for (suite, path) in currents.iter().zip(&current_paths) {
            if suite.smoke {
                println!(
                    "skipping smoke summary for suite {} (run a full bench first)",
                    suite.suite
                );
                continue;
            }
            let destination = options.baselines.join(format!("{}.json", suite.suite));
            if let Err(error) = std::fs::copy(path, &destination) {
                eprintln!(
                    "bench_gate: copy {} -> {}: {error}",
                    path.display(),
                    destination.display()
                );
                return ExitCode::FAILURE;
            }
            println!("baseline updated: {}", destination.display());
            wrote += 1;
        }
        if wrote == 0 {
            eprintln!("bench_gate: no full-run summaries found to install as baselines");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let baselines = match load_dir(&options.baselines) {
        Ok(loaded) => loaded
            .into_iter()
            .map(|(_, suite)| suite)
            .collect::<Vec<_>>(),
        Err(error) => {
            eprintln!("bench_gate: {error}");
            return ExitCode::FAILURE;
        }
    };
    if baselines.is_empty() {
        eprintln!(
            "bench_gate: no baselines under {} — run the benches and `bench_gate --update` on the reference machine",
            options.baselines.display()
        );
        return ExitCode::FAILURE;
    }

    let outcome = run_gate(&baselines, &currents, options.tolerance);
    print!("{}", outcome.table(options.tolerance));
    if outcome.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
