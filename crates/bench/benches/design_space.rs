//! The design-space exploration: five axes swept around the paper's design point, each
//! reported as study rows in `design_space_study.json`:
//!
//! 1. **CMA array size** (rows) — analytical FOMs + area per array vs the ET-lookup
//!    stage cost at that geometry;
//! 2. **TCAM search radius** — recall / candidate-fraction curves (functional searches);
//! 3. **hot-row cache capacity** — measured hit rate and modeled energy per query from
//!    real serve replays;
//! 4. **cache replacement policy** (CLOCK / LFU / TinyLFU) — hit rate and modeled
//!    energy at a deliberately small cache, from real serve replays (the full
//!    capacity × skew grid is the dedicated `cache_scaling` bench);
//! 5. **shard count** — cross-shard interconnect traffic and imbalance from clustered
//!    replays;
//! 6. **GPCiM accumulator width** (8 vs 16 bit, the ROADMAP satellite) — pooling error
//!    versus add energy/latency and accumulator area.

use imars_bench::{black_box, Harness};
use imars_core::end_to_end::{serve_cluster_study, ServeStudyConfig};
use imars_core::et_lookup::EtLookupModel;
use imars_core::nns_eval::{run_nns_study, NnsEvalConfig};
use imars_core::system::{Study, StudyRow, SweepGrid};
use imars_core::workloads::RecsysWorkload;
use imars_device::area::AreaModel;
use imars_device::characterization::{ArrayCharacterizer, ArrayFom};
use imars_device::technology::TechnologyParams;
use imars_fabric::accumulator::GpcimAccumulator;
use imars_fabric::FabricConfig;
use imars_serve::CachePolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 2024;

fn array_size_axis(study: &mut Study) {
    let area = AreaModel::new(TechnologyParams::predictive_45nm());
    let workload = RecsysWorkload::movielens_filtering();
    for rows in [64usize, 128, 256, 512] {
        let fom = if rows == 256 {
            // The paper's geometry uses the published (calibrated) figures.
            ArrayFom::paper_reference()
        } else {
            ArrayCharacterizer::new(TechnologyParams::predictive_45nm())
                .with_cma_geometry(rows, 256)
                .analytical_fom()
                .expect("geometry characterizes")
        };
        let config = FabricConfig {
            cma_rows: rows,
            ..FabricConfig::paper_design_point()
        };
        let model = EtLookupModel::new(config, fom).expect("valid config");
        let cost = model.stage_cost(&workload).expect("workload maps");
        let cma_area = area.cma(rows, 256).total_um2();
        study.push(
            StudyRow::new()
                .config_text("axis", "cma_rows")
                .config_num("cma_rows", rows as f64)
                .metric("read_energy_pj", fom.cma.read.energy_pj)
                .metric("search_energy_pj", fom.cma.search.energy_pj)
                .metric("et_worst_latency_ns", cost.worst.latency_ns)
                .metric("et_spread_latency_ns", cost.spread.latency_ns)
                .metric("et_worst_energy_pj", cost.worst.energy_pj)
                .metric("cma_area_um2", cma_area)
                .metric(
                    "subsystem_area_mm2",
                    area.et_subsystem_mm2(32, 4, 32, rows, 256),
                ),
        );
    }
}

fn radius_axis(study: &mut Study, smoke: bool) {
    let config = NnsEvalConfig {
        queries: if smoke { 8 } else { 32 },
        radii: vec![70, 80, 90, 100, 110, 120],
        seed: SEED,
        ..NnsEvalConfig::movielens_scale()
    };
    let result = run_nns_study(&config, &ArrayFom::paper_reference()).expect("valid config");
    for point in &result.points {
        let row = point.study_row().config_text_front("axis", "search_radius");
        study.push(row);
    }
}

fn cache_axis(study: &mut Study, smoke: bool) {
    for cache_rows in [0usize, 128, 512, 2048] {
        let foms = serve_cluster_study(&ServeStudyConfig {
            queries: if smoke { 256 } else { 2048 },
            cache_rows,
            seed: SEED,
            ..ServeStudyConfig::small()
        })
        .expect("replay runs");
        let row = foms.study_row().config_text_front("axis", "cache_rows");
        study.push(row);
    }
}

fn cache_policy_axis(study: &mut Study, smoke: bool) {
    // A deliberately small cache (1/16th of the catalogue) so replacement quality is
    // visible; the full capacity × skew × placement grid lives in the dedicated
    // cache_scaling bench.
    for policy in CachePolicy::ALL {
        let foms = serve_cluster_study(&ServeStudyConfig {
            queries: if smoke { 256 } else { 2048 },
            cache_rows: 128,
            cache_policy: policy,
            seed: SEED,
            ..ServeStudyConfig::small()
        })
        .expect("replay runs");
        let row = foms.study_row().config_text_front("axis", "cache_policy");
        study.push(row);
    }
}

fn shard_axis(study: &mut Study, smoke: bool) {
    for shards in [1usize, 2, 4, 8] {
        let foms = serve_cluster_study(&ServeStudyConfig {
            queries: if smoke { 256 } else { 2048 },
            shards,
            seed: SEED,
            ..ServeStudyConfig::small()
        })
        .expect("replay runs");
        let row = foms.study_row().config_text_front("axis", "shards");
        study.push(row);
    }
}

fn accumulator_axis(study: &mut Study) {
    // Functional pooling-error measurement: 200 chains of 64 random int8 values,
    // accumulated at each width and compared against the exact i32 sum.
    let mut rng = StdRng::seed_from_u64(SEED);
    let chains: Vec<Vec<i8>> = (0..200)
        .map(|_| (0..64).map(|_| rng.gen_range(-127..=127i8)).collect())
        .collect();
    let published = ArrayFom::paper_reference();
    let workload = RecsysWorkload::movielens_filtering();
    for accumulator in [GpcimAccumulator::INT8, GpcimAccumulator::INT16] {
        let mut error_total = 0.0f64;
        for chain in &chains {
            let mut lane = [0i32];
            let mut exact = 0i64;
            for &value in chain {
                accumulator.accumulate(&mut lane, &[value]);
                exact += value as i64;
            }
            error_total += (lane[0] as i64 - exact).unsigned_abs() as f64;
        }
        let add = accumulator.add_fom(published.cma.add);
        let cost = EtLookupModel::paper_reference()
            .with_accumulator(accumulator)
            .stage_cost(&workload)
            .expect("workload maps");
        study.push(
            StudyRow::new()
                .config_text("axis", "accumulator_bits")
                .config_num("accumulator_bits", accumulator.bits() as f64)
                .metric("mean_abs_pooling_error", error_total / chains.len() as f64)
                .metric("add_energy_pj", add.energy_pj)
                .metric("add_latency_ns", add.latency_ns)
                .metric("accumulator_area_um2", accumulator.area_um2(256))
                .metric("et_worst_latency_ns", cost.worst.latency_ns)
                .metric("et_worst_energy_pj", cost.worst.energy_pj),
        );
    }
}

fn main() {
    let mut harness = Harness::from_args("design_space");
    let smoke = harness.is_smoke();

    // Timed: the analytical cost model itself (the thing every sweep point evaluates).
    let model = EtLookupModel::paper_reference();
    let workload = RecsysWorkload::movielens_ranking();
    harness.bench("model/et_stage_cost_eval", || {
        black_box(model.stage_cost(&workload).expect("workload maps"));
    });
    let grid = SweepGrid::new()
        .axis("cma_rows", &[64.0, 128.0, 256.0, 512.0])
        .axis("radius", &[70.0, 80.0, 90.0, 100.0, 110.0, 120.0])
        .axis("cache_rows", &[0.0, 128.0, 512.0, 2048.0])
        .axis("cache_policy", &[0.0, 1.0, 2.0])
        .axis("shards", &[1.0, 2.0, 4.0, 8.0])
        .axis("accumulator_bits", &[8.0, 16.0]);
    harness.bench("model/sweep_grid_enumeration", || {
        black_box(grid.points());
    });

    let mut study = Study::new("design_space_study", SEED);
    study.note(
        "method",
        "one axis swept at a time around the paper design point; cache and shard axes \
         replay real Zipf traffic through the serve engine; the full cartesian grid is \
         enumerated for the record",
    );
    study.note("grid_points", &grid.len().to_string());
    array_size_axis(&mut study);
    radius_axis(&mut study, smoke);
    cache_axis(&mut study, smoke);
    cache_policy_axis(&mut study, smoke);
    shard_axis(&mut study, smoke);
    accumulator_axis(&mut study);

    // Headline metrics pulled from the axes for the harness summary.
    let hit_at_2048 = study
        .rows()
        .iter()
        .filter(|r| {
            r.config.iter().any(|(k, v)| {
                k == "axis"
                    && matches!(v, imars_core::system::ParamValue::Text(t) if t == "cache_rows")
            }) && r.config.iter().any(|(k, v)| {
                k == "cache_rows"
                    && matches!(v, imars_core::system::ParamValue::Num(n) if *n == 2048.0)
            })
        })
        .find_map(|r| r.get_metric("cache_hit_rate"));
    if let Some(hit) = hit_at_2048 {
        harness.metric("cache_hit_rate_at_2048_rows", hit, "fraction");
    }
    let cross_shard_8 = study
        .rows()
        .iter()
        .filter(|r| {
            r.config.iter().any(|(k, v)| {
                k == "shards" && matches!(v, imars_core::system::ParamValue::Num(n) if *n == 8.0)
            })
        })
        .find_map(|r| r.get_metric("cross_shard_kb"));
    if let Some(kb) = cross_shard_8 {
        harness.metric("cross_shard_kb_at_8_shards", kb, "kB");
    }
    let int16_error = study
        .rows()
        .iter()
        .filter(|r| {
            r.config.iter().any(|(k, v)| {
                k == "accumulator_bits"
                    && matches!(v, imars_core::system::ParamValue::Num(n) if *n == 16.0)
            })
        })
        .find_map(|r| r.get_metric("mean_abs_pooling_error"));
    if let Some(error) = int16_error {
        harness.metric("int16_mean_abs_pooling_error", error, "lsb");
    }
    harness.metric("study_rows", study.rows().len() as f64, "rows");

    match study.write_json() {
        Ok(path) => println!("study written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write study JSON: {error}"),
    }
    harness.finish();
}
