//! Placeholder bench — reserved for the design_space reproduction study (see ROADMAP).
fn main() {}
