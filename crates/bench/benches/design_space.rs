fn main() {}
