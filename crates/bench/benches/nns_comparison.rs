//! Placeholder bench — reserved for the nns_comparison reproduction study (see ROADMAP).
fn main() {}
