//! The Sec. IV-C2 nearest-neighbour-search comparison: TCAM fixed-radius (functional
//! CMA searches) versus LSH Hamming top-k versus exact cosine, as recall / candidate
//! ratio / energy curves over the radius sweep, with the paper's ~3.8×10⁴ latency and
//! ~2.8×10⁴ energy claims next to the modeled ratios.
//!
//! Timed benches measure the software counterparts (TCAM functional search and exact
//! cosine top-k over the MovieLens-scale catalogue).

use imars_bench::{black_box, Harness};
use imars_core::nns_eval::{run_nns_study, NnsEvalConfig};
use imars_core::system::{Study, StudyRow};
use imars_device::characterization::ArrayFom;
use imars_fabric::CmaArray;
use imars_recsys::lsh::RandomHyperplaneLsh;
use imars_recsys::nns::{ExactIndex, Metric};
use imars_recsys::EmbeddingTable;

fn main() {
    let mut harness = Harness::from_args("nns_comparison");
    let fom = ArrayFom::paper_reference();
    let config = if harness.is_smoke() {
        NnsEvalConfig {
            queries: 8,
            ..NnsEvalConfig::movielens_scale()
        }
    } else {
        NnsEvalConfig::movielens_scale()
    };

    // Timed: the functional TCAM search and the exact-cosine baseline it replaces.
    let items = EmbeddingTable::new(config.items, config.dim, config.seed).expect("valid shape");
    let lsh = RandomHyperplaneLsh::new(config.dim, config.signature_bits, config.seed ^ 0x5f5f)
        .expect("valid LSH");
    let rows_per_array = fom.cma_geometry.rows;
    let mut arrays: Vec<CmaArray> = (0..config.items.div_ceil(rows_per_array))
        .map(|_| CmaArray::new(rows_per_array, fom.cma_geometry.cols, fom))
        .collect();
    for (item, row) in items.iter_rows().enumerate() {
        let signature = lsh.signature(row).expect("valid row");
        arrays[item / rows_per_array]
            .write_row_bits(item % rows_per_array, &signature, config.signature_bits)
            .expect("row in range");
    }
    let index = ExactIndex::new(config.dim, items.iter_rows().map(|r| r.to_vec()).collect())
        .expect("valid index");
    let query_vec: Vec<f32> = items.row(0).to_vec();
    let query_signature = lsh.signature(&query_vec).expect("valid query");
    let radius = config.radii[config.radii.len() / 2];
    harness.bench("software/tcam_search_catalogue", || {
        for array in &arrays {
            black_box(array.search(&query_signature, radius).expect("valid query"));
        }
    });
    harness.bench("software/exact_cosine_topk", || {
        black_box(
            index
                .top_k(&query_vec, config.k, Metric::Cosine)
                .expect("valid query"),
        );
    });

    // The modeled + functional study.
    let study_result = run_nns_study(&config, &fom).expect("valid study config");
    let mut study = Study::new("nns_comparison_study", config.seed);
    study.note(
        "method",
        "queries are noise-perturbed item vectors; ground truth is exact cosine top-k; \
         TCAM matches come from functional CmaArray searches over stored signatures",
    );
    for point in &study_result.points {
        study.push(point.study_row());
    }
    study.push(
        StudyRow::new()
            .config_text("comparison", "tcam_vs_gpu_lsh")
            .metric("tcam_latency_ns", study_result.tcam_cost().latency_ns)
            .metric("tcam_energy_pj", study_result.tcam_cost().energy_pj)
            .metric("gpu_lsh_latency_us", study_result.gpu_lsh.latency_us)
            .metric("gpu_lsh_energy_uj", study_result.gpu_lsh.energy_uj)
            .metric("gpu_cosine_latency_us", study_result.gpu_cosine.latency_us)
            .metric("latency_speedup", study_result.tcam_latency_speedup())
            .metric("energy_ratio", study_result.tcam_energy_ratio())
            .metric(
                "paper_latency_speedup",
                imars_gpu::reference::SPEEDUP_NNS.latency,
            )
            .metric(
                "paper_energy_ratio",
                imars_gpu::reference::SPEEDUP_NNS.energy,
            )
            .metric("lsh_topk_recall", study_result.lsh_topk_recall),
    );
    match study.write_json() {
        Ok(path) => println!("study written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write study JSON: {error}"),
    }

    // Headline metrics.
    harness.metric(
        "tcam_latency_speedup_vs_gpu_lsh",
        study_result.tcam_latency_speedup(),
        "x",
    );
    harness.metric(
        "tcam_energy_ratio_vs_gpu_lsh",
        study_result.tcam_energy_ratio(),
        "x",
    );
    harness.metric("lsh_topk_recall", study_result.lsh_topk_recall, "fraction");
    if let Some(best) = study_result.best_radius_within(0.10) {
        harness.metric("best_radius_within_10pct", best.radius as f64, "bits");
        harness.metric("best_radius_recall", best.recall_at_k, "fraction");
    }
    for point in &study_result.points {
        harness.metric(
            &format!("recall_at_radius_{}", point.radius),
            point.recall_at_k,
            "fraction",
        );
    }
    harness.finish();
}
