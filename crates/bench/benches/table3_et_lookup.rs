//! The Table III embedding-table-lookup study: per-workload iMARS cost (worst-case and
//! spread accountings bracketing the paper's reported factors) versus the calibrated GPU
//! baseline, plus the table-size × pooling-factor × dimensionality design sweep.
//!
//! The timed benches keep the software gather/pool hot path (the measured counterpart
//! of the modeled numbers) on the perf trajectory; `table3_et_lookup_study.json`
//! carries the full comparison table.

use imars_bench::{black_box, Harness};
use imars_core::et_lookup::{et_lookup_sweep, table3_comparisons, EtLookupModel};
use imars_core::system::Study;
use imars_gpu::GpuModel;
use imars_recsys::batch::{PoolingBatch, PoolingMode};
use imars_recsys::EmbeddingTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 30_000;
const DIM: usize = 32;
const BATCH: usize = 256;
const POOLING_FACTOR: usize = 50; // the MovieLens watch-history length of the model

fn main() {
    let mut harness = Harness::from_args("table3_et_lookup");
    let model = EtLookupModel::paper_reference();
    let gpu = GpuModel::gtx_1080();

    // Timed: the measured software counterpart of the modeled ET-lookup stage.
    let table = EmbeddingTable::new(ROWS, DIM, 42).expect("valid shape");
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<Vec<u32>> = (0..BATCH)
        .map(|_| {
            (0..POOLING_FACTOR)
                .map(|_| rng.gen_range(0..ROWS as u32))
                .collect()
        })
        .collect();
    let batch = PoolingBatch::from_requests(&requests);
    let mut out = vec![0.0f32; BATCH * DIM];
    let gather_ns = harness.bench("software/gather_pool_batch_256x50", || {
        table
            .gather_pool_batch(&batch, PoolingMode::Sum, &mut out)
            .expect("validated geometry");
        black_box(&out);
    });
    harness.metric(
        "software/lookup_throughput",
        (BATCH * POOLING_FACTOR) as f64 / gather_ns * 1e3,
        "Mlookups/s",
    );

    // The Table III comparison.
    let mut study = Study::new("table3_et_lookup_study", 42);
    study.note(
        "accounting",
        "imars worst = all lookups serialize in one CMA (Sec. IV-C1); spread = lookups \
         balance across the table's arrays; the paper's factors fall between the brackets",
    );
    let comparisons = table3_comparisons(&model, &gpu).expect("paper workloads map");
    for comparison in &comparisons {
        study.push(comparison.study_row());
        let slug = comparison
            .label
            .to_lowercase()
            .replace([' ', '/'], "_")
            .replace("__", "_");
        harness.metric(
            &format!("{slug}/latency_speedup_worst"),
            comparison.latency_speedup_worst(),
            "x",
        );
        harness.metric(
            &format!("{slug}/latency_speedup_spread"),
            comparison.latency_speedup_spread(),
            "x",
        );
        if let Some(paper) = comparison.paper_latency_speedup {
            harness.metric(&format!("{slug}/paper_latency_speedup"), paper, "x");
        }
    }

    // Design sweep: table size x pooling factor x dimensionality.
    let sweep = et_lookup_sweep(
        &model,
        &gpu,
        &[1_024, 4_096, 30_000],
        &[1, 8, 32, 50, 128],
        &[16, 32],
    );
    for point in &sweep {
        study.push(point.study_row());
    }
    harness.metric("sweep_points", sweep.len() as f64, "rows");

    match study.write_json() {
        Ok(path) => println!("study written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write study JSON: {error}"),
    }
    harness.finish();
}
