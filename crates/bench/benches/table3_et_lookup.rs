//! Placeholder bench — reserved for the table3_et_lookup reproduction study (see ROADMAP).
fn main() {}
