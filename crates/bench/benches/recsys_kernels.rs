//! The embedding/pooling kernel comparison at the heart of the iMARS software baseline:
//!
//! * `pool/naive_per_lookup` — the seed's hot path: one row at a time, with a fresh
//!   `Vec` allocated per lookup (what `lookup(...).to_vec()` did in the models) and a
//!   fresh output allocated per request;
//! * `pool/alloc_per_request` — per-request `EmbeddingTable::pool` (one output
//!   allocation per request, slices per lookup);
//! * `pool/batched_zero_alloc` — `EmbeddingTable::gather_pool_batch` over a CSR batch
//!   into one caller-provided buffer;
//! * `pool/int8_packed` — `imars_fabric::cma::PackedTable` pooling with the SWAR
//!   saturating int8 kernel the CMA functional simulator shares.
//!
//! Geometry follows the acceptance target: batch ≥ 64 requests, pooling factor ≥ 16,
//! dim = 32 (the paper's embedding width). The derived `batched_speedup_vs_naive`
//! metric lands in the JSON summary.
//!
//! The `simd/*` rows pit the runtime-dispatched pooling kernels against their scalar
//! references (f32 pooling accumulate, blocked f32 dot, packed int8 SWAR accumulate);
//! the derived `simd_*_speedup` metrics quantify what the SSE2/AVX2 paths buy on the
//! host CPU.

use imars_bench::{black_box, Harness};
use imars_fabric::cma::PackedTable;
use imars_recsys::batch::{PoolingBatch, PoolingMode};
use imars_recsys::quantization::QuantizedTable;
use imars_recsys::EmbeddingTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 30_000; // the paper's Criteo ET cap
const DIM: usize = 32;
const BATCH: usize = 256;
const POOLING_FACTOR: usize = 32;

fn main() {
    let mut harness = Harness::from_args("recsys_kernels");

    let table = EmbeddingTable::new(ROWS, DIM, 42).expect("valid shape");
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<Vec<u32>> = (0..BATCH)
        .map(|_| {
            (0..POOLING_FACTOR)
                .map(|_| rng.gen_range(0..ROWS as u32))
                .collect()
        })
        .collect();
    let requests_usize: Vec<Vec<usize>> = requests
        .iter()
        .map(|r| r.iter().map(|&i| i as usize).collect())
        .collect();
    let batch = PoolingBatch::from_requests(&requests);
    let mut out = vec![0.0f32; BATCH * DIM];

    // The seed's per-lookup style: a fresh Vec per looked-up row, a fresh output per
    // request (this is exactly what the DLRM/YouTubeDNN forward passes used to do).
    harness.bench("pool/naive_per_lookup", || {
        for request in &requests_usize {
            let mut pooled = vec![0.0f32; DIM];
            for &index in request {
                let row = table.lookup(index).expect("in range").to_vec();
                for (acc, value) in pooled.iter_mut().zip(row.iter()) {
                    *acc += value;
                }
            }
            black_box(&pooled);
        }
    });

    harness.bench("pool/alloc_per_request", || {
        for request in &requests_usize {
            black_box(table.pool(request).expect("in range"));
        }
    });

    let batched_ns = harness.bench("pool/batched_zero_alloc", || {
        table
            .gather_pool_batch(&batch, PoolingMode::Sum, &mut out)
            .expect("validated geometry");
        black_box(&out);
    });

    // Int8 path: quantize once, pool with the shared SWAR kernel.
    let quantized = QuantizedTable::from_table(&table);
    let packed = PackedTable::from_rows(quantized.iter_rows(), DIM).expect("uniform rows");
    let mut acc = vec![0u64; packed.words_per_row()];
    let mut out_i8 = vec![0i8; DIM];
    harness.bench("pool/int8_packed", || {
        for request in &requests {
            packed
                .pool_into(request, &mut acc, &mut out_i8)
                .expect("validated geometry");
            black_box(&out_i8);
        }
    });

    // SIMD vs scalar, kernel by kernel. The dispatched side resolves its path once per
    // process (scalar when IMARS_FORCE_SCALAR is set, so on the reference container
    // these rows are only meaningful without it); the scalar side calls the always-on
    // reference implementation directly.
    let mut pooled = vec![0.0f32; DIM];
    let pool_simd_ns = harness.bench("simd/pool_f32_dispatch", || {
        for request in &requests_usize {
            pooled.fill(0.0);
            for &index in request {
                imars_recsys::simd::add_assign_f32(
                    &mut pooled,
                    table.lookup(index).expect("in range"),
                );
            }
            black_box(&pooled);
        }
    });
    let pool_scalar_ns = harness.bench("simd/pool_f32_scalar", || {
        for request in &requests_usize {
            pooled.fill(0.0);
            for &index in request {
                imars_recsys::simd::add_assign_f32_scalar(
                    &mut pooled,
                    table.lookup(index).expect("in range"),
                );
            }
            black_box(&pooled);
        }
    });

    // Blocked dot at the MLP's widest layer; 64 reps per iteration so a sample is
    // comfortably above timer resolution.
    const DOT_LEN: usize = 256;
    let w: Vec<f32> = (0..DOT_LEN).map(|i| ((i as f32) * 0.37).sin()).collect();
    let x: Vec<f32> = (0..DOT_LEN).map(|i| ((i as f32) * 0.61).cos()).collect();
    let dot_simd_ns = harness.bench("simd/dot_f32_dispatch", || {
        for _ in 0..64 {
            black_box(imars_recsys::simd::dot_f32(black_box(&w), black_box(&x)));
        }
    });
    let dot_scalar_ns = harness.bench("simd/dot_f32_scalar", || {
        for _ in 0..64 {
            black_box(imars_recsys::simd::dot_f32_scalar(
                black_box(&w),
                black_box(&x),
            ));
        }
    });

    // Packed int8 SWAR accumulate over a 4096-lane row (saturated lanes cost the same
    // as live ones, so no reset between reps).
    const SWAR_WORDS: usize = 512;
    let mut acc_words = vec![0u64; SWAR_WORDS];
    let row_words: Vec<u64> = (0..SWAR_WORDS as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let swar_simd_ns = harness.bench("simd/int8_swar_dispatch", || {
        for _ in 0..16 {
            imars_fabric::simd::saturating_accumulate_packed(&mut acc_words, &row_words);
        }
        black_box(&acc_words);
    });
    let swar_scalar_ns = harness.bench("simd/int8_swar_scalar", || {
        for _ in 0..16 {
            imars_fabric::simd::saturating_accumulate_packed_scalar(&mut acc_words, &row_words);
        }
        black_box(&acc_words);
    });

    // Derived metrics: per-iteration time covers the whole batch, so ratios compare
    // like with like. The acceptance target is batched >= 3x naive. On shared/virtual
    // hosts the medians absorb noise spikes, so the min-based ratio (fastest sample of
    // each side) is recorded as the noise-robust companion number.
    let naive = &harness.results()[0];
    let batched = &harness.results()[2];
    let speedup = naive.median_ns() / batched_ns.max(f64::MIN_POSITIVE);
    let speedup_min = naive.min_ns() / batched.min_ns().max(f64::MIN_POSITIVE);
    harness.metric("batched_speedup_vs_naive", speedup, "x");
    harness.metric("batched_speedup_vs_naive_min", speedup_min, "x");
    harness.metric(
        "batched_lookup_throughput",
        (BATCH * POOLING_FACTOR) as f64 / batched_ns * 1e3,
        "Mlookups/s",
    );
    harness.metric(
        "simd_pool_f32_speedup",
        pool_scalar_ns / pool_simd_ns.max(f64::MIN_POSITIVE),
        "x",
    );
    harness.metric(
        "simd_dot_f32_speedup",
        dot_scalar_ns / dot_simd_ns.max(f64::MIN_POSITIVE),
        "x",
    );
    harness.metric(
        "simd_int8_swar_speedup",
        swar_scalar_ns / swar_simd_ns.max(f64::MIN_POSITIVE),
        "x",
    );
    if !harness.is_smoke() && speedup.max(speedup_min) < 3.0 {
        eprintln!("warning: batched pooling speedup {speedup:.2}x (min-based {speedup_min:.2}x) is below the 3x target");
    }
    harness.finish();
}
