//! Placeholder bench — reserved for the fig2_breakdown reproduction study (see ROADMAP).
fn main() {}
