//! The Fig. 2 stage-breakdown study: filtering and ranking decomposed into
//! {ET lookup, DNN stack, NNS/TopK} on both the iMARS model and the GPU baseline —
//! plus the measured before/after of the blocked, batched mat-vec that un-hid the
//! DLRM batch speedup on the 1-core container (ROADMAP "end-to-end batch speedup").
//!
//! Timed benches: a naive single-accumulator mat-vec (the seed's kernel shape) versus
//! the blocked kernel the MLPs now share, single-sample versus batched-GEMM MLP forward
//! via the public API, and DLRM one-at-a-time versus `predict_batch`.

use imars_bench::{black_box, Harness};
use imars_core::et_lookup::EtLookupModel;
use imars_core::pipeline::fig2_comparisons;
use imars_core::system::{Study, StudyRow};
use imars_gpu::GpuModel;
use imars_recsys::dlrm::{Dlrm, DlrmConfig, DlrmSample};
use imars_recsys::mlp::{Activation, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CANDIDATES: usize = 100;
const MLP_BATCH: usize = 64;
const DLRM_BATCH: usize = 128;

/// The seed's mat-vec shape: one sequential accumulator per output row. Kept here as the
/// measured "before" of the blocked-kernel satellite.
fn naive_matvec(weights: &[f32], inputs: usize, outputs: usize, x: &[f32], out: &mut [f32]) {
    for (o, slot) in out.iter_mut().take(outputs).enumerate() {
        let row = &weights[o * inputs..(o + 1) * inputs];
        let mut sum = 0.0f32;
        for (w, v) in row.iter().zip(x.iter()) {
            sum += w * v;
        }
        *slot = sum;
    }
}

fn main() {
    let mut harness = Harness::from_args("fig2_breakdown");
    let model = EtLookupModel::paper_reference();
    let gpu = GpuModel::gtx_1080();
    let mut study = Study::new("fig2_breakdown_study", 11);
    study.note(
        "figure",
        "Fig. 2 of the paper: per-operation stage breakdowns, GPU vs iMARS",
    );

    // Modeled stage breakdowns (the Fig. 2 reproduction).
    let comparisons = fig2_comparisons(&model, &gpu, CANDIDATES).expect("paper workloads map");
    for comparison in &comparisons {
        for row in comparison.study_rows() {
            study.push(row);
        }
        harness.metric(
            &format!("{}/dnn_stack_speedup", comparison.stage),
            comparison.operation_speedup("DNN Stack"),
            "x",
        );
    }
    harness.metric(
        "paper_dnn_stack_speedup",
        imars_gpu::reference::SPEEDUP_DNN_STACK,
        "x",
    );

    // Measured: naive vs blocked mat-vec on the DLRM top-MLP shape (383 x 256).
    let (inputs, outputs) = (383usize, 256usize);
    let mut rng = StdRng::seed_from_u64(3);
    let weights: Vec<f32> = (0..inputs * outputs)
        .map(|_| rng.gen_range(-0.1..0.1f32))
        .collect();
    let x: Vec<f32> = (0..inputs).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
    let mut out = vec![0.0f32; outputs];
    let naive_ns = harness.bench("matvec/naive_383x256", || {
        naive_matvec(&weights, inputs, outputs, &x, &mut out);
        black_box(&out);
    });
    let mlp = Mlp::new(&[inputs, outputs], Activation::Linear, 9).expect("valid shape");
    let mut scratch = mlp.scratch();
    let blocked_ns = harness.bench("matvec/blocked_383x256", || {
        black_box(mlp.forward_into(&x, &mut scratch).expect("valid input"));
    });
    harness.metric(
        "matvec_blocked_speedup",
        naive_ns / blocked_ns.max(f64::MIN_POSITIVE),
        "x",
    );

    // Measured: single-sample vs batched-GEMM forward of the DLRM top-MLP stack.
    let stack = Mlp::new(&[inputs, 256, 64, 1], Activation::Sigmoid, 10).expect("valid shape");
    let batch_inputs: Vec<f32> = (0..MLP_BATCH * inputs)
        .map(|_| rng.gen_range(-1.0..1.0f32))
        .collect();
    let mut single_scratch = stack.scratch();
    let single_ns = harness.bench("mlp/forward_single_x64", || {
        for s in 0..MLP_BATCH {
            black_box(
                stack
                    .forward_into(
                        &batch_inputs[s * inputs..(s + 1) * inputs],
                        &mut single_scratch,
                    )
                    .expect("valid input"),
            );
        }
    });
    let mut batch_scratch = stack.batch_scratch(MLP_BATCH);
    let batch_ns = harness.bench("mlp/forward_batch_64", || {
        black_box(
            stack
                .forward_batch_into(&batch_inputs, &mut batch_scratch)
                .expect("valid batch"),
        );
    });
    let mlp_batch_speedup = single_ns / batch_ns.max(f64::MIN_POSITIVE);
    harness.metric("mlp_batch_speedup", mlp_batch_speedup, "x");

    // Measured: the DLRM end-to-end batch speedup the ROADMAP item asked to un-hide.
    let config = DlrmConfig {
        num_dense_features: 13,
        sparse_cardinalities: vec![1000; 26],
        embedding_dim: 32,
        bottom_hidden: vec![256, 128, 32],
        top_hidden: vec![256, 64, 1],
        seed: 42,
    };
    let dlrm = Dlrm::new(config.clone()).expect("valid config");
    let samples: Vec<DlrmSample> = (0..DLRM_BATCH)
        .map(|_| DlrmSample {
            dense: (0..config.num_dense_features)
                .map(|_| rng.gen_range(-1.0..1.0f32))
                .collect(),
            sparse: config
                .sparse_cardinalities
                .iter()
                .map(|&cardinality| rng.gen_range(0..cardinality))
                .collect(),
        })
        .collect();
    let one_at_a_time_ns = harness.bench("dlrm/predict_one_at_a_time_x128", || {
        for sample in &samples {
            black_box(dlrm.predict(sample).expect("valid sample"));
        }
    });
    let batch_dlrm_ns = harness.bench("dlrm/predict_batch_128", || {
        black_box(dlrm.predict_batch(&samples).expect("valid samples"));
    });
    let dlrm_batch_speedup = one_at_a_time_ns / batch_dlrm_ns.max(f64::MIN_POSITIVE);
    harness.metric("dlrm_batch_speedup", dlrm_batch_speedup, "x");

    study.push(
        StudyRow::new()
            .config_text("stage", "software")
            .config_text("operation", "blocked_batched_matvec")
            .metric("naive_matvec_ns", naive_ns)
            .metric("blocked_matvec_ns", blocked_ns)
            .metric(
                "matvec_speedup",
                naive_ns / blocked_ns.max(f64::MIN_POSITIVE),
            )
            .metric("mlp_batch_speedup", mlp_batch_speedup)
            .metric("dlrm_batch_speedup", dlrm_batch_speedup),
    );

    match study.write_json() {
        Ok(path) => println!("study written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write study JSON: {error}"),
    }
    harness.finish();
}
