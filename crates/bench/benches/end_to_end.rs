//! End-to-end DLRM serving: one-at-a-time `predict` (the seed's only path) versus the
//! zero-allocation `predict_batch` hot path, on a small Criteo-shaped model.

use imars_bench::{black_box, Harness};
use imars_recsys::dlrm::{Dlrm, DlrmConfig, DlrmSample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH: usize = 128;

/// A Criteo-shaped but bench-sized DLRM: the paper's layer widths with the per-field
/// cardinalities capped so model construction stays fast.
fn bench_config() -> DlrmConfig {
    DlrmConfig {
        num_dense_features: 13,
        sparse_cardinalities: vec![1000; 26],
        embedding_dim: 32,
        bottom_hidden: vec![256, 128, 32],
        top_hidden: vec![256, 64, 1],
        seed: 42,
    }
}

fn main() {
    let mut harness = Harness::from_args("end_to_end");

    let config = bench_config();
    let model = Dlrm::new(config.clone()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(11);
    let samples: Vec<DlrmSample> = (0..BATCH)
        .map(|_| DlrmSample {
            dense: (0..config.num_dense_features).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
            sparse: config
                .sparse_cardinalities
                .iter()
                .map(|&cardinality| rng.gen_range(0..cardinality))
                .collect(),
        })
        .collect();

    let single_ns = harness.bench("dlrm/predict_one_at_a_time", || {
        for sample in &samples {
            black_box(model.predict(sample).expect("valid sample"));
        }
    });

    let batched_ns = harness.bench("dlrm/predict_batch", || {
        black_box(model.predict_batch(&samples).expect("valid samples"));
    });

    harness.metric("batch_speedup", single_ns / batched_ns.max(f64::MIN_POSITIVE), "x");
    harness.metric(
        "batched_inference_throughput",
        BATCH as f64 / batched_ns * 1e9,
        "inferences/s",
    );
    harness.finish();
}
