//! End-to-end DLRM serving: one-at-a-time `predict` (the seed's only path) versus the
//! zero-allocation `predict_batch` hot path, plus a full `imars-serve` Zipf traffic
//! replay through the sharded + cached engine (dynamic batching, TCAM candidate
//! filtering, telemetry).

use imars_bench::{black_box, Harness};
use imars_recsys::dlrm::{Dlrm, DlrmConfig, DlrmSample};
use imars_recsys::EmbeddingTable;
use imars_serve::{
    replay_threaded, ClusterConfig, Placement, ReplayConfig, ReplayWorkload, RuntimeConfig,
    ServeConfig, ServeEngine, ThreadedReplayConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH: usize = 128;
/// Serve-replay shape: a catalogue of items, ~12 % of it cacheable, Zipf-1.2 traffic.
const NUM_ITEMS: usize = 8192;
const CACHE_ROWS: usize = 1024;
const ZIPF_EXPONENT: f64 = 1.2;

/// A Criteo-shaped but bench-sized DLRM: the paper's layer widths with the per-field
/// cardinalities capped so model construction stays fast.
fn bench_config() -> DlrmConfig {
    DlrmConfig {
        num_dense_features: 13,
        sparse_cardinalities: vec![1000; 26],
        embedding_dim: 32,
        bottom_hidden: vec![256, 128, 32],
        top_hidden: vec![256, 64, 1],
        seed: 42,
    }
}

/// The serve-replay DLRM: same widths, but the dense input is the pooled 32-d item
/// profile (the serving engine derives dense features from the user's history).
fn serve_model_config() -> DlrmConfig {
    DlrmConfig {
        num_dense_features: 32,
        ..bench_config()
    }
}

fn serve_replay(harness: &mut Harness) {
    let queries = if harness.is_smoke() { 512 } else { 10_000 };
    let items = EmbeddingTable::new(NUM_ITEMS, 32, 77).expect("valid table");
    let model = Dlrm::new(serve_model_config()).expect("valid config");
    let config = ServeConfig::paper_serving(CACHE_ROWS).expect("valid config");
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries,
        num_users: 4096,
        num_items: NUM_ITEMS,
        zipf_exponent: ZIPF_EXPONENT,
        history_len: 32,
        offered_qps: 4_000.0,
        candidates_per_query: 100,
        top_k: 10,
        sparse_cardinalities: serve_model_config().sparse_cardinalities,
        seed: 11,
        item_permutation_seed: None,
    })
    .expect("valid replay config");

    let mut engine = ServeEngine::new(model, &items, config).expect("valid engine");
    let outcome = engine.replay(&workload).expect("replay succeeds");
    let mut report = outcome.report;
    report.name = "end_to_end_serve".to_string();
    println!("{}", report.summary());
    match report.write_json() {
        Ok(path) => println!("serve telemetry written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write serve telemetry: {error}"),
    }

    let telemetry = &report.telemetry;
    harness.metric(
        "serve/p50_latency_us",
        telemetry.latency.quantile_us(0.50),
        "us",
    );
    harness.metric(
        "serve/p95_latency_us",
        telemetry.latency.quantile_us(0.95),
        "us",
    );
    harness.metric(
        "serve/p99_latency_us",
        telemetry.latency.quantile_us(0.99),
        "us",
    );
    harness.metric("serve/served_throughput", telemetry.served_qps(), "qps");
    harness.metric(
        "serve/mean_batch_size",
        telemetry.mean_batch_size(),
        "requests",
    );
    harness.metric("serve/cache_hit_rate", report.cache.hit_rate(), "fraction");
    harness.metric(
        "serve/gpcim_energy_per_query",
        telemetry.energy_pj_per_query(),
        "pJ",
    );

    // The same trace on the threaded runtime (2 workers, real-time Poisson pacing):
    // measured wall-clock tails and queue/backpressure telemetry next to the modeled
    // numbers above. Outputs are pinned bit-identical by the equivalence tests; here we
    // only record the measured side.
    let threaded = replay_threaded(
        &engine,
        &workload,
        &ThreadedReplayConfig {
            runtime: RuntimeConfig::new(2, 4096).expect("valid runtime config"),
            speedup: 1.0,
            shed_on_full: false,
        },
    )
    .expect("threaded replay succeeds");
    let mut threaded_report = threaded.report;
    threaded_report.name = "end_to_end_serve_threaded".to_string();
    println!("{}", threaded_report.summary());
    match threaded_report.write_json() {
        Ok(path) => println!("threaded serve telemetry written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write threaded serve telemetry: {error}"),
    }
    let measured = &threaded_report.telemetry;
    harness.metric(
        "serve_threaded/p50_measured_us",
        measured.latency.quantile_us(0.50),
        "us",
    );
    harness.metric(
        "serve_threaded/p95_measured_us",
        measured.latency.quantile_us(0.95),
        "us",
    );
    harness.metric(
        "serve_threaded/p99_measured_us",
        measured.latency.quantile_us(0.99),
        "us",
    );
    harness.metric(
        "serve_threaded/served_throughput",
        measured.served_qps(),
        "qps",
    );
    if let Some(stats) = &threaded_report.runtime {
        harness.metric(
            "serve_threaded/queue_depth_max",
            stats.queue_depth_max as f64,
            "requests",
        );
        harness.metric(
            "serve_threaded/worker_utilization",
            stats.utilization(),
            "fraction",
        );
        harness.metric(
            "serve_threaded/rejection_rate",
            stats.rejection_rate(),
            "fraction",
        );
    }
}

/// The multi-node section: the same Zipf trace on a permuted catalogue (ids are not
/// popularity-sorted), routed across 4 shard nodes under both placement policies.
/// Placement must not change a single output bit; what it changes — cross-shard bytes,
/// fan-out, shard imbalance, interconnect energy — is recorded as `serve_sharded/*`
/// metrics so the telemetry trajectory tracks the partitioning quality.
fn serve_sharded(harness: &mut Harness) {
    let queries = if harness.is_smoke() { 512 } else { 10_000 };
    let items = EmbeddingTable::new(NUM_ITEMS, 32, 77).expect("valid table");
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries,
        num_users: 4096,
        num_items: NUM_ITEMS,
        zipf_exponent: ZIPF_EXPONENT,
        history_len: 32,
        offered_qps: 4_000.0,
        candidates_per_query: 100,
        top_k: 10,
        sparse_cardinalities: serve_model_config().sparse_cardinalities,
        seed: 11,
        item_permutation_seed: Some(11),
    })
    .expect("valid replay config");
    let histogram = workload
        .row_histogram(NUM_ITEMS)
        .expect("histories in range");

    let mut scores: Option<Vec<u32>> = None;
    for placement in [Placement::Range, Placement::Frequency] {
        let cluster = ClusterConfig {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 256,
            placement,
            hot_replicas: if placement == Placement::Frequency {
                NUM_ITEMS / 8
            } else {
                0
            },
            interconnect: Default::default(),
            resilience: None,
        };
        let (mut engine, handle) = ServeEngine::new_clustered(
            Dlrm::new(serve_model_config()).expect("valid config"),
            &items,
            ServeConfig::paper_serving(CACHE_ROWS).expect("valid config"),
            &cluster,
            Some(&histogram),
        )
        .expect("valid clustered engine");
        let outcome = engine.replay(&workload).expect("clustered replay succeeds");
        let bits: Vec<u32> = outcome
            .responses
            .iter()
            .map(|response| response.score.to_bits())
            .collect();
        match &scores {
            None => scores = Some(bits),
            Some(reference) => assert_eq!(
                reference, &bits,
                "placement policy must not change ranking outputs"
            ),
        }
        let mut report = outcome.report;
        report.name = format!("end_to_end_serve_sharded_{}", placement.label());
        println!("{}", report.summary());
        match report.write_json() {
            Ok(path) => println!("sharded serve telemetry written to {}", path.display()),
            Err(error) => eprintln!("warning: could not write sharded telemetry: {error}"),
        }
        let label = placement.label();
        let stats = report
            .cluster
            .expect("clustered reports carry cluster stats");
        harness.metric(
            &format!("serve_sharded/cross_shard_kb_{label}"),
            stats.cross_shard_bytes as f64 / 1e3,
            "kB",
        );
        harness.metric(
            &format!("serve_sharded/cross_traffic_fraction_{label}"),
            stats.cross_traffic_fraction(),
            "fraction",
        );
        harness.metric(
            &format!("serve_sharded/mean_fanout_{label}"),
            stats.mean_fanout(),
            "shards/fetch",
        );
        harness.metric(
            &format!("serve_sharded/imbalance_{label}"),
            stats.imbalance(),
            "x",
        );
        harness.metric(
            &format!("serve_sharded/energy_per_query_{label}"),
            report.telemetry.energy_pj_per_query(),
            "pJ",
        );
        handle.shutdown().expect("cluster shuts down cleanly");
    }
}

fn main() {
    let mut harness = Harness::from_args("end_to_end");

    let config = bench_config();
    let model = Dlrm::new(config.clone()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(11);
    let samples: Vec<DlrmSample> = (0..BATCH)
        .map(|_| DlrmSample {
            dense: (0..config.num_dense_features)
                .map(|_| rng.gen_range(-1.0..1.0f32))
                .collect(),
            sparse: config
                .sparse_cardinalities
                .iter()
                .map(|&cardinality| rng.gen_range(0..cardinality))
                .collect(),
        })
        .collect();

    let single_ns = harness.bench("dlrm/predict_one_at_a_time", || {
        for sample in &samples {
            black_box(model.predict(sample).expect("valid sample"));
        }
    });

    let batched_ns = harness.bench("dlrm/predict_batch", || {
        black_box(model.predict_batch(&samples).expect("valid samples"));
    });

    harness.metric(
        "batch_speedup",
        single_ns / batched_ns.max(f64::MIN_POSITIVE),
        "x",
    );
    harness.metric(
        "batched_inference_throughput",
        BATCH as f64 / batched_ns * 1e9,
        "inferences/s",
    );

    serve_replay(&mut harness);
    serve_sharded(&mut harness);
    harness.finish();
}
