//! The Table II array-level study: the paper's published per-operation figures of merit
//! next to the device crate's analytical characterization, the GPCiM accumulator-width
//! variants, and the per-row iMARS-vs-GPU comparison that anchors everything above it.
//!
//! Timed benches cover the functional CMA simulator's hot operations (GPCiM pooling,
//! TCAM search, int8 SWAR pooling and the widened int16 accumulator) so the simulator
//! itself stays on the perf trajectory; the study JSON
//! (`table2_array_level_study.json`) records the analytical-vs-published FOM ratios and
//! the accumulator trade-off.

use imars_bench::{black_box, Harness};
use imars_core::system::{FomComparison, Study, StudyRow};
use imars_device::area::AreaModel;
use imars_device::characterization::{ArrayCharacterizer, ArrayFom, OperationFom};
use imars_device::technology::TechnologyParams;
use imars_fabric::accumulator::GpcimAccumulator;
use imars_fabric::cma::{CmaArray, PackedTable};
use imars_fabric::Cost;
use imars_gpu::kernels::TableAccess;
use imars_gpu::model::EtLookupWorkload;
use imars_gpu::GpuModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 32;
const POOL_ROWS: usize = 64;

fn fom_rows(study: &mut Study, analytical: &ArrayFom, published: &ArrayFom) {
    let pairs: [(&str, OperationFom, OperationFom); 7] = [
        ("cma_write", analytical.cma.write, published.cma.write),
        ("cma_read", analytical.cma.read, published.cma.read),
        ("cma_add", analytical.cma.add, published.cma.add),
        ("cma_search", analytical.cma.search, published.cma.search),
        (
            "intra_mat_add",
            analytical.intra_mat_add,
            published.intra_mat_add,
        ),
        (
            "intra_bank_add",
            analytical.intra_bank_add,
            published.intra_bank_add,
        ),
        (
            "crossbar_matmul",
            analytical.crossbar_matmul,
            published.crossbar_matmul,
        ),
    ];
    for (name, model, paper) in pairs {
        study.push(
            StudyRow::new()
                .config_text("operation", name)
                .metric("analytical_energy_pj", model.energy_pj)
                .metric("analytical_latency_ns", model.latency_ns)
                .metric("published_energy_pj", paper.energy_pj)
                .metric("published_latency_ns", paper.latency_ns)
                .metric("energy_ratio", model.energy_pj / paper.energy_pj)
                .metric("latency_ratio", model.latency_ns / paper.latency_ns),
        );
    }
}

fn main() {
    let mut harness = Harness::from_args("table2_array_level");
    let published = ArrayFom::paper_reference();

    // Functional simulator hot paths.
    let mut cma = CmaArray::new(256, 256, published);
    let mut rng = StdRng::seed_from_u64(5);
    for row in 0..256 {
        let values: Vec<i8> = (0..DIM).map(|_| rng.gen_range(-127..=127i8)).collect();
        cma.write_embedding(row, &values).expect("row in range");
    }
    let pool_selection: Vec<usize> = (0..POOL_ROWS).map(|i| (i * 37) % 256).collect();
    harness.bench("cma/pool_rows_64", || {
        black_box(
            cma.pool_rows(&pool_selection, DIM)
                .expect("valid selection"),
        );
    });
    harness.bench("cma/pool_rows_with_int16_64", || {
        black_box(
            cma.pool_rows_with(&pool_selection, DIM, GpcimAccumulator::INT16)
                .expect("valid selection"),
        );
    });
    let query = vec![0x1234_5678_9abc_def0u64, 0, 0, 0];
    harness.bench("cma/tcam_search", || {
        black_box(cma.search(&query, 100).expect("valid query"));
    });
    let rows: Vec<Vec<i8>> = (0..256)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-127..=127i8)).collect())
        .collect();
    let packed = PackedTable::from_rows(rows.iter().map(|r| r.as_slice()), DIM).expect("uniform");
    let indices: Vec<u32> = (0..POOL_ROWS as u32).map(|i| (i * 37) % 256).collect();
    let mut acc = vec![0u64; packed.words_per_row()];
    let mut out = vec![0i8; DIM];
    harness.bench("packed/pool_int8_swar", || {
        packed
            .pool_into(&indices, &mut acc, &mut out)
            .expect("valid selection");
        black_box(&out);
    });

    // Analytical characterization vs the published Table II.
    let characterizer = ArrayCharacterizer::new(TechnologyParams::predictive_45nm());
    let analytical = characterizer
        .analytical_fom()
        .expect("paper design point characterizes");
    let mut study = Study::new("table2_array_level_study", 5);
    study.note(
        "source",
        "Table II of the paper vs the analytical circuit models of imars-device",
    );
    fom_rows(&mut study, &analytical, &published);

    // The accumulator-width trade-off (satellite of the design-space sweep).
    let area = AreaModel::new(TechnologyParams::predictive_45nm());
    let cma_area = area.cma(256, 256).total_um2();
    for accumulator in [GpcimAccumulator::INT8, GpcimAccumulator::INT16] {
        let add = accumulator.add_fom(published.cma.add);
        study.push(
            StudyRow::new()
                .config_text("operation", "gpcim_add")
                .config_num("accumulator_bits", accumulator.bits() as f64)
                .metric("energy_pj", add.energy_pj)
                .metric("latency_ns", add.latency_ns)
                .metric("accumulator_area_um2", accumulator.area_um2(256))
                .metric(
                    "cma_area_overhead_fraction",
                    (accumulator.area_um2(256) - GpcimAccumulator::INT8.area_um2(256)) / cma_area,
                )
                .metric(
                    "exact_pooling_rows",
                    accumulator.exact_pooling_rows() as f64,
                ),
        );
    }

    // The per-row anchor of every higher-level comparison: pooling POOL_ROWS rows inside
    // one CMA versus gathering and summing them on the GPU.
    let imars_pool = Cost::from_fom(published.cma.read)
        .serial(Cost::from_fom(published.cma.add).repeat(POOL_ROWS - 1));
    let gpu = GpuModel::gtx_1080().et_lookup(&EtLookupWorkload {
        tables: vec![TableAccess {
            rows: 30_000,
            lookups: POOL_ROWS,
        }],
        dim: DIM,
    });
    let comparison = FomComparison::new("pool_64_rows_one_table", imars_pool, gpu);
    harness.metric(
        "pool64/latency_speedup_vs_gpu",
        comparison.latency_speedup(),
        "x",
    );
    harness.metric("pool64/energy_ratio_vs_gpu", comparison.energy_ratio(), "x");
    study.push(comparison.study_row());

    match study.write_json() {
        Ok(path) => println!("study written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write study JSON: {error}"),
    }

    // Headline calibration metrics for the summary JSON.
    harness.metric(
        "analytical_read_energy_ratio",
        analytical.cma.read.energy_pj / published.cma.read.energy_pj,
        "x",
    );
    harness.metric(
        "analytical_search_latency_ratio",
        analytical.cma.search.latency_ns / published.cma.search.latency_ns,
        "x",
    );
    harness.metric(
        "int16_accumulator_area_overhead",
        GpcimAccumulator::INT16.area_um2(256) / GpcimAccumulator::INT8.area_um2(256),
        "x",
    );
    harness.finish();
}
