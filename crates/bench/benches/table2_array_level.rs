//! Placeholder bench — reserved for the table2_array_level reproduction study (see ROADMAP).
fn main() {}
