//! The MARM cache scaling-law study runner: hit-rate-vs-capacity and
//! qps-vs-capacity curves per replacement policy (CLOCK / LFU / TinyLFU), per Zipf
//! skew, per cache placement (router-side vs per-shard-node), written as the
//! byte-deterministic `cache_scaling_study.json`.
//!
//! Timed benches cover one grid-point replay and the sweep-grid enumeration; the
//! headline harness metrics surface the winning frontier (how many cells each policy
//! wins) and the admission win at the smallest capacity under the heaviest skew.

use imars_bench::{black_box, Harness};
use imars_core::cache_scaling::{run_cache_scaling, CacheScalingConfig};
use imars_serve::{CachePlacement, CachePolicy};

fn main() {
    let mut harness = Harness::from_args("cache_scaling");
    let smoke = harness.is_smoke();
    let config = if smoke {
        CacheScalingConfig::small()
    } else {
        CacheScalingConfig::paper()
    };

    // Timed: one smallest-capacity grid-point replay (the unit of work every sweep
    // point pays) and the grid enumeration itself.
    let point_config = CacheScalingConfig {
        capacities: vec![config.capacities[0]],
        zipf_exponents: vec![config.zipf_exponents[0]],
        placements: vec![CachePlacement::Router],
        ..config.clone()
    };
    harness.bench("study/grid_point_replays", || {
        black_box(run_cache_scaling(&point_config).expect("replay runs"));
    });
    let grid = config.grid();
    harness.bench("study/sweep_grid_enumeration", || {
        black_box(grid.points());
    });

    let outcome = run_cache_scaling(&config).expect("study runs");
    let study = outcome.study();

    // Headline metrics: the frontier tally per policy and the small-capacity,
    // heavy-skew cell where admission filtering matters most.
    let frontier = outcome.frontier();
    for policy in CachePolicy::ALL {
        let wins = frontier.iter().filter(|c| c.winner == policy).count();
        harness.metric(
            &format!("frontier_wins_{}", policy.label()),
            wins as f64,
            "cells",
        );
    }
    let small_capacity = *config.capacities.first().expect("capacities non-empty");
    let heavy_skew = config
        .zipf_exponents
        .iter()
        .copied()
        .fold(f64::MIN, f64::max);
    let hit_at = |policy: CachePolicy| {
        outcome
            .points
            .iter()
            .find(|p| {
                p.policy == policy
                    && p.placement == CachePlacement::Router
                    && p.capacity == small_capacity
                    && p.zipf_exponent == heavy_skew
            })
            .map(|p| p.hit_rate)
    };
    if let (Some(clock), Some(tinylfu)) = (hit_at(CachePolicy::Clock), hit_at(CachePolicy::TinyLfu))
    {
        harness.metric("clock_hit_rate_small_capacity", clock, "fraction");
        harness.metric("tinylfu_hit_rate_small_capacity", tinylfu, "fraction");
        harness.metric(
            "tinylfu_hit_rate_gain_small_capacity",
            tinylfu - clock,
            "fraction",
        );
    }
    harness.metric("study_rows", study.rows().len() as f64, "rows");

    match study.write_json() {
        Ok(path) => println!("study written to {}", path.display()),
        Err(error) => eprintln!("warning: could not write study JSON: {error}"),
    }
    harness.finish();
}
