//! The MARM cache scaling-law study: hit rate and throughput versus cache capacity,
//! per replacement policy, per Zipf skew, per cache placement.
//!
//! MARM-style cache-augmented serving (the design iMARS's serving buffer models) lives
//! or dies by how much of the Zipf head a small cache captures. This study replays the
//! same seeded trace through the serve engine at every point of a
//! (policy × placement × capacity × skew) grid and records the measured hit rate, the
//! modeled energy per query, and the simulated throughput — producing the
//! hit-rate-vs-capacity and qps-vs-capacity curves the README plots, plus a *winning
//! frontier*: for each (placement, skew, capacity) cell, the policy with the best hit
//! rate.
//!
//! Everything is deterministic: the workload is seeded, the replay runs on the
//! simulated clock, and the cache policies are pure functions of the lookup sequence,
//! so two same-seed runs emit byte-identical study JSON (a test pins this).

use imars_recsys::dlrm::Dlrm;
use imars_recsys::EmbeddingTable;
use imars_serve::{
    CachePlacement, CachePolicy, ReplayConfig, ReplayWorkload, ServeConfig, ServeEngine,
};

use crate::end_to_end::serve_model;
use crate::error::CoreError;
use crate::system::{Study, StudyRow, SweepGrid};

/// Configuration of the cache scaling-law study.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheScalingConfig {
    /// Queries replayed per grid point.
    pub queries: usize,
    /// Item catalogue size (rows in the embedding table).
    pub num_items: usize,
    /// Cache capacities to sweep, in rows (the total budget; under per-shard
    /// placement it is split evenly across the shards).
    pub capacities: Vec<usize>,
    /// Zipf exponents of the replayed traffic.
    pub zipf_exponents: Vec<f64>,
    /// Cache placements to sweep (router-side, per-shard-node, or both).
    pub placements: Vec<CachePlacement>,
    /// RNG seed for the workload (one workload per skew, shared by every policy and
    /// capacity so the curves are directly comparable).
    pub seed: u64,
}

impl CacheScalingConfig {
    /// A small, fast grid for tests and CI smoke runs (12 replays).
    pub fn small() -> Self {
        Self {
            queries: 256,
            num_items: 2048,
            capacities: vec![32, 256],
            zipf_exponents: vec![1.2],
            placements: vec![CachePlacement::Router, CachePlacement::Shard],
            seed: 11,
        }
    }

    /// The full study grid behind the README curves: capacities from 1/128th to half
    /// of the catalogue, moderate and heavy skew, both placements (48 replays).
    pub fn paper() -> Self {
        Self {
            queries: 4096,
            num_items: 8192,
            capacities: vec![64, 256, 1024, 4096],
            zipf_exponents: vec![0.8, 1.2],
            placements: vec![CachePlacement::Router, CachePlacement::Shard],
            seed: 2024,
        }
    }

    /// The study grid as a [`SweepGrid`] (policies enumerated as their wire codes),
    /// for enumeration benchmarks and row-count cross-checks.
    pub fn grid(&self) -> SweepGrid {
        let capacities: Vec<f64> = self.capacities.iter().map(|&c| c as f64).collect();
        let placements: Vec<f64> = (0..self.placements.len()).map(|i| i as f64).collect();
        SweepGrid::new()
            .axis("policy", &[0.0, 1.0, 2.0])
            .axis("placement", &placements)
            .axis("capacity", &capacities)
            .axis("zipf_exponent", &self.zipf_exponents)
    }
}

/// One measured grid point of the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheScalingPoint {
    /// Replacement/admission policy of this point.
    pub policy: CachePolicy,
    /// Cache placement of this point.
    pub placement: CachePlacement,
    /// Total cache capacity in rows.
    pub capacity: usize,
    /// Zipf exponent of the replayed traffic.
    pub zipf_exponent: f64,
    /// Measured cache hit rate (hits + coalesced over all lookups).
    pub hit_rate: f64,
    /// Modeled queries per second (queries over modeled GPCiM + interconnect
    /// latency — deterministic, unlike wall-clock-tainted served qps).
    pub modeled_qps: f64,
    /// Modeled GPCiM + interconnect energy per query, picojoules.
    pub energy_pj_per_query: f64,
    /// TinyLFU admission rejections (0 for the other policies).
    pub rejections: u64,
}

impl CacheScalingPoint {
    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        StudyRow::new()
            .config_text("policy", self.policy.label())
            .config_text("placement", self.placement.label())
            .config_num("capacity", self.capacity as f64)
            .config_num("zipf_exponent", self.zipf_exponent)
            .metric("hit_rate", self.hit_rate)
            .metric("modeled_qps", self.modeled_qps)
            .metric("energy_pj_per_query", self.energy_pj_per_query)
            .metric("rejections", self.rejections as f64)
    }
}

/// The policy that won one (placement, skew, capacity) cell of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierCell {
    /// Cache placement of the cell.
    pub placement: CachePlacement,
    /// Zipf exponent of the cell.
    pub zipf_exponent: f64,
    /// Total cache capacity of the cell, in rows.
    pub capacity: usize,
    /// The policy with the highest hit rate (an exact tie goes to the later policy
    /// in [`CachePolicy::ALL`] order, so the admission-filtered policy must strictly
    /// lose a cell to cede it).
    pub winner: CachePolicy,
    /// The winning hit rate.
    pub hit_rate: f64,
}

/// All measured points of one study run, plus the configuration that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheScalingOutcome {
    /// The configuration the grid ran with.
    pub config: CacheScalingConfig,
    /// One point per (policy × placement × capacity × skew) grid cell, in
    /// deterministic sweep order.
    pub points: Vec<CacheScalingPoint>,
}

impl CacheScalingOutcome {
    /// The winning frontier: for each (placement, skew, capacity) cell, the policy
    /// with the best hit rate.
    pub fn frontier(&self) -> Vec<FrontierCell> {
        let mut cells = Vec::new();
        for &placement in &self.config.placements {
            for &zipf in &self.config.zipf_exponents {
                for &capacity in &self.config.capacities {
                    let best = self
                        .points
                        .iter()
                        .filter(|p| {
                            p.placement == placement
                                && p.zipf_exponent == zipf
                                && p.capacity == capacity
                        })
                        .max_by(|a, b| {
                            a.hit_rate
                                .partial_cmp(&b.hit_rate)
                                .expect("hit rates are finite")
                        });
                    if let Some(point) = best {
                        cells.push(FrontierCell {
                            placement,
                            zipf_exponent: zipf,
                            capacity,
                            winner: point.policy,
                            hit_rate: point.hit_rate,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Render the study: one row per grid point plus one `frontier` row per
    /// (placement, skew, capacity) cell. Byte-deterministic for a fixed config.
    pub fn study(&self) -> Study {
        let mut study = Study::new("cache_scaling_study", self.config.seed);
        study.note(
            "method",
            "one seeded Zipf replay per (policy x placement x capacity x skew) grid \
             point through the serve engine on the simulated clock; same workload per \
             skew across all policies and capacities; frontier rows name the \
             best-hit-rate policy per cell",
        );
        study.note("grid_points", &self.config.grid().len().to_string());
        for point in &self.points {
            study.push(point.study_row().config_text_front("axis", "cache_scaling"));
        }
        for cell in self.frontier() {
            study.push(
                StudyRow::new()
                    .config_text("axis", "frontier")
                    .config_text("placement", cell.placement.label())
                    .config_num("zipf_exponent", cell.zipf_exponent)
                    .config_num("capacity", cell.capacity as f64)
                    .config_text("winner", cell.winner.label())
                    .metric("hit_rate", cell.hit_rate),
            );
        }
        study
    }
}

fn serve_error(error: imars_serve::ServeError) -> CoreError {
    CoreError::InvalidExperiment {
        reason: format!("cache scaling replay failed: {error}"),
    }
}

/// Run the full scaling grid: one seeded replay per (policy × placement × capacity ×
/// skew) point, the same workload shared across every point of a skew so the curves
/// are directly comparable.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] when a replay cannot be configured or
/// fails mid-run.
pub fn run_cache_scaling(config: &CacheScalingConfig) -> Result<CacheScalingOutcome, CoreError> {
    let model_config = serve_model();
    let items = EmbeddingTable::new(config.num_items, 32, 77)?;
    let mut points = Vec::new();
    for &zipf_exponent in &config.zipf_exponents {
        let workload = ReplayWorkload::generate(&ReplayConfig {
            queries: config.queries,
            num_users: (config.queries / 2).max(64),
            num_items: config.num_items,
            zipf_exponent,
            history_len: 32,
            offered_qps: 4_000.0,
            candidates_per_query: 100,
            top_k: 10,
            sparse_cardinalities: model_config.sparse_cardinalities.clone(),
            seed: config.seed,
            item_permutation_seed: None,
        })
        .map_err(serve_error)?;
        for &placement in &config.placements {
            for &capacity in &config.capacities {
                for policy in CachePolicy::ALL {
                    let mut serve_config =
                        ServeConfig::paper_serving(capacity).map_err(serve_error)?;
                    serve_config.shards = serve_config.shards.min(config.num_items.max(1));
                    serve_config.cache_policy = policy;
                    serve_config.cache_placement = placement;
                    let model = Dlrm::new(model_config.clone())?;
                    let mut engine =
                        ServeEngine::new(model, &items, serve_config).map_err(serve_error)?;
                    let outcome = engine.replay(&workload).map_err(serve_error)?;
                    points.push(CacheScalingPoint {
                        policy,
                        placement,
                        capacity,
                        zipf_exponent,
                        hit_rate: outcome.report.cache.hit_rate(),
                        modeled_qps: outcome.report.telemetry.modeled_qps(),
                        energy_pj_per_query: outcome.report.telemetry.energy_pj_per_query(),
                        rejections: outcome.report.cache.rejections,
                    });
                }
            }
        }
    }
    Ok(CacheScalingOutcome {
        config: config.clone(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_runs_and_covers_every_point() {
        let config = CacheScalingConfig::small();
        let outcome = run_cache_scaling(&config).unwrap();
        assert_eq!(outcome.points.len(), config.grid().len());
        assert!(outcome
            .points
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.hit_rate)));
        assert!(outcome.points.iter().all(|p| p.modeled_qps > 0.0));
        // Larger caches never hit less on the same trace, per policy and placement.
        for &placement in &config.placements {
            for policy in CachePolicy::ALL {
                let series: Vec<f64> = config
                    .capacities
                    .iter()
                    .map(|&c| {
                        outcome
                            .points
                            .iter()
                            .find(|p| {
                                p.policy == policy && p.placement == placement && p.capacity == c
                            })
                            .unwrap()
                            .hit_rate
                    })
                    .collect();
                for pair in series.windows(2) {
                    assert!(
                        pair[1] >= pair[0] - 1e-9,
                        "{policy:?}/{placement:?}: {series:?}"
                    );
                }
            }
        }
        let frontier = outcome.frontier();
        assert_eq!(
            frontier.len(),
            config.placements.len() * config.zipf_exponents.len() * config.capacities.len()
        );
    }

    #[test]
    fn same_seed_runs_emit_byte_identical_study_json() {
        let config = CacheScalingConfig::small();
        let first = run_cache_scaling(&config).unwrap().study().to_json();
        let second = run_cache_scaling(&config).unwrap().study().to_json();
        assert_eq!(first, second, "study JSON must be byte-deterministic");
    }

    #[test]
    fn admission_beats_plain_clock_at_small_capacity_under_heavy_skew() {
        let config = CacheScalingConfig {
            queries: 512,
            capacities: vec![32],
            zipf_exponents: vec![1.2],
            placements: vec![CachePlacement::Router],
            ..CacheScalingConfig::small()
        };
        let outcome = run_cache_scaling(&config).unwrap();
        let rate = |policy: CachePolicy| {
            outcome
                .points
                .iter()
                .find(|p| p.policy == policy)
                .unwrap()
                .hit_rate
        };
        assert!(
            rate(CachePolicy::TinyLfu) >= rate(CachePolicy::Lfu),
            "tinylfu {} < lfu {}",
            rate(CachePolicy::TinyLfu),
            rate(CachePolicy::Lfu)
        );
        assert!(
            rate(CachePolicy::Lfu) >= rate(CachePolicy::Clock),
            "lfu {} < clock {}",
            rate(CachePolicy::Lfu),
            rate(CachePolicy::Clock)
        );
    }
}
