//! The algorithm-level accuracy study (Sec. IV-B of the paper).
//!
//! The paper's accuracy argument is that mapping the models onto iMARS costs little:
//! int8 embeddings lose ~0.6 % filtering hit rate versus FP32, and the LSH + Hamming
//! retrieval the TCAM implements trades a few more points for its enormous speedup. This
//! module reproduces that experiment end to end on synthetic MovieLens data — train the
//! YouTubeDNN filtering tower, then retrieve the held-out item under four configurations
//! (FP32 cosine, int8 cosine, int8 LSH Hamming top-k, int8 TCAM fixed radius) and score
//! hit rate / MRR / AUC for each — plus the DLRM side: fp32-vs-int8 CTR AUC on synthetic
//! Criteo traffic.
//!
//! The study also records the observed fp32-vs-int8 dot-product deltas next to the
//! analytic bound derived from [`QuantizedTable::max_quantization_error`]
//! (`|⟨u,v⟩ − ⟨û,v̂⟩| ≤ ‖u‖₁·ε_v + ‖v̂‖₁·ε_u`), which the cross-crate equivalence tests
//! pin down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use imars_datasets::{
    SyntheticCriteo, SyntheticCriteoConfig, SyntheticMovieLens, SyntheticMovieLensConfig,
};
use imars_recsys::dlrm::{Dlrm, DlrmConfig};
use imars_recsys::lsh::RandomHyperplaneLsh;
use imars_recsys::metrics::{hit_rate, mean_reciprocal_rank, roc_auc};
use imars_recsys::nns::{cosine_similarity, ExactIndex, Metric};
use imars_recsys::quantization::{QuantizationParams, QuantizedTable};
use imars_recsys::training::{train_filtering, TrainingConfig};
use imars_recsys::youtube_dnn::{YoutubeDnn, YoutubeDnnConfig};

use crate::error::CoreError;
use crate::system::StudyRow;

/// Configuration of the MovieLens filtering-accuracy study.
#[derive(Debug, Clone, PartialEq)]
pub struct MovieLensAccuracyConfig {
    /// The synthetic dataset to generate.
    pub dataset: SyntheticMovieLensConfig,
    /// Embedding dimensionality of the trained model.
    pub embedding_dim: usize,
    /// Hidden sizes of the filtering tower (last entry = user-embedding width).
    pub filtering_hidden: Vec<usize>,
    /// BPR training hyper-parameters.
    pub training: TrainingConfig,
    /// Number of candidates retrieved per user (the paper's filtering depth).
    pub k: usize,
    /// LSH signature length in bits.
    pub signature_bits: usize,
    /// TCAM fixed radius (in signature bits).
    pub radius: u32,
    /// Negative items sampled per test user for the AUC metric.
    pub negatives_per_user: usize,
    /// Every n-th user is held out as a test user.
    pub holdout_every: usize,
    /// RNG seed for negative sampling.
    pub seed: u64,
}

impl MovieLensAccuracyConfig {
    /// A configuration small enough for unit tests and bench smoke runs (a few hundred
    /// users, a couple of training epochs) that still shows the fp32 ≥ int8 ≥ LSH
    /// ordering.
    pub fn small() -> Self {
        Self {
            dataset: SyntheticMovieLensConfig::small(),
            embedding_dim: 16,
            filtering_hidden: vec![32, 16],
            training: TrainingConfig {
                epochs: 4,
                learning_rate: 0.05,
                negatives_per_positive: 4,
                seed: 1,
            },
            k: 20,
            signature_bits: 128,
            radius: 52,
            negatives_per_user: 20,
            holdout_every: 5,
            seed: 11,
        }
    }
}

/// Accuracy of one retrieval configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalVariant {
    /// Configuration label (`fp32_cosine`, `int8_cosine`, ...).
    pub label: String,
    /// Fraction of test users whose held-out item was retrieved.
    pub hit_rate: f64,
    /// Mean reciprocal rank of the held-out item in the candidate list.
    pub mrr: f64,
    /// AUC of the variant's similarity score (held-out positive vs sampled negatives).
    pub auc: f64,
    /// Mean number of candidates retrieved per user.
    pub mean_candidates: f64,
}

impl RetrievalVariant {
    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        StudyRow::new()
            .config_text("variant", &self.label)
            .metric("hit_rate", self.hit_rate)
            .metric("mrr", self.mrr)
            .metric("auc", self.auc)
            .metric("mean_candidates", self.mean_candidates)
    }
}

/// The complete MovieLens accuracy study result.
#[derive(Debug, Clone, PartialEq)]
pub struct MovieLensAccuracyStudy {
    /// Per-configuration accuracies, in order: fp32 cosine, int8 cosine, int8 LSH
    /// Hamming top-k, int8 TCAM fixed radius.
    pub variants: Vec<RetrievalVariant>,
    /// Whether the BPR training loss improved first→last epoch.
    pub training_improved: bool,
    /// Number of evaluated test users.
    pub test_users: usize,
    /// The item table's quantization step (ε of the error bound).
    pub max_quantization_error: f32,
    /// Largest observed |⟨u,v⟩ − ⟨û,v̂⟩| across all scored user/item pairs.
    pub max_score_delta: f32,
    /// Largest analytic bound `‖u‖₁·ε_v + ‖v̂‖₁·ε_u` across the same pairs.
    pub score_delta_bound: f32,
    /// Whether every observed delta stayed within its per-pair analytic bound.
    pub deltas_within_bound: bool,
}

impl MovieLensAccuracyStudy {
    /// The variant with the given label.
    pub fn variant(&self, label: &str) -> Option<&RetrievalVariant> {
        self.variants.iter().find(|v| v.label == label)
    }
}

/// Run the MovieLens filtering-accuracy study.
///
/// # Errors
///
/// Propagates model/training errors for inconsistent configurations.
pub fn movielens_accuracy(
    config: &MovieLensAccuracyConfig,
) -> Result<MovieLensAccuracyStudy, CoreError> {
    let dataset = SyntheticMovieLens::generate(config.dataset.clone());
    let (train, test) = dataset.train_test_split(config.holdout_every);
    if train.is_empty() || test.is_empty() {
        return Err(CoreError::InvalidExperiment {
            reason: "accuracy study needs non-empty train and test splits".to_string(),
        });
    }

    let mut model = YoutubeDnn::new(YoutubeDnnConfig {
        num_items: config.dataset.num_items,
        num_genres: config.dataset.num_genres,
        num_age_groups: config.dataset.num_age_groups,
        num_genders: config.dataset.num_genders,
        num_occupations: config.dataset.num_occupations,
        num_ranking_contexts: config.dataset.num_ranking_contexts,
        embedding_dim: config.embedding_dim,
        filtering_hidden: config.filtering_hidden.clone(),
        ranking_hidden: vec![16, 1],
        seed: config.seed,
    })?;
    let report = train_filtering(&mut model, &train, &config.training)?;

    // User embeddings of the test users (batched, bit-identical to the serial path).
    let profiles: Vec<_> = test.iter().map(|e| e.profile.clone()).collect();
    let users_flat = model.user_embedding_batch(&profiles)?;
    let dim = config.embedding_dim;
    let users: Vec<&[f32]> = (0..test.len())
        .map(|i| &users_flat[i * dim..(i + 1) * dim])
        .collect();

    // FP32 item index and its int8 round trip.
    let item_table = model.item_table();
    let quantized_items = QuantizedTable::from_table(item_table);
    let epsilon_items = quantized_items.max_quantization_error();
    let items_fp32: Vec<Vec<f32>> = item_table.iter_rows().map(|r| r.to_vec()).collect();
    let items_int8: Vec<Vec<f32>> = (0..quantized_items.rows())
        .map(|i| quantized_items.dequantized_row(i))
        .collect::<Result<_, _>>()?;
    let index_fp32 = ExactIndex::new(dim, items_fp32.clone())?;
    let index_int8 = ExactIndex::new(dim, items_int8.clone())?;

    // Per-user quantized embeddings (one symmetric scale per user vector, as the CMA
    // row format stores them) and the fp32-vs-int8 dot-product delta audit.
    let mut users_int8: Vec<Vec<f32>> = Vec::with_capacity(users.len());
    let mut epsilon_users: Vec<f32> = Vec::with_capacity(users.len());
    for user in &users {
        let params = QuantizationParams::fit(user.iter().copied());
        users_int8.push(params.dequantize_vec(&params.quantize_vec(user)));
        epsilon_users.push(params.scale * 0.5);
    }
    let mut max_score_delta = 0.0f32;
    let mut score_delta_bound = 0.0f32;
    let mut deltas_within_bound = true;
    for ((user, user_int8), &epsilon_user) in users
        .iter()
        .zip(users_int8.iter())
        .zip(epsilon_users.iter())
    {
        let user_l1: f32 = user.iter().map(|v| v.abs()).sum();
        for (item, item_int8) in items_fp32.iter().zip(items_int8.iter()) {
            let exact: f32 = user.iter().zip(item.iter()).map(|(a, b)| a * b).sum();
            let rounded: f32 = user_int8
                .iter()
                .zip(item_int8.iter())
                .map(|(a, b)| a * b)
                .sum();
            let delta = (exact - rounded).abs();
            let item_l1: f32 = item_int8.iter().map(|v| v.abs()).sum();
            let bound = user_l1 * epsilon_items + item_l1 * epsilon_user;
            max_score_delta = max_score_delta.max(delta);
            score_delta_bound = score_delta_bound.max(bound);
            // Small slack for the float summation itself.
            if delta > bound + 1e-4 {
                deltas_within_bound = false;
            }
        }
    }

    // LSH signatures over the int8 item rows (what the ItET rows actually store).
    let lsh = RandomHyperplaneLsh::new(dim, config.signature_bits, config.seed ^ 0xa5a5)?;
    let signatures: Vec<Vec<u64>> = items_int8
        .iter()
        .map(|row| lsh.signature(row))
        .collect::<Result<_, _>>()?;

    // Retrieval per variant.
    let mut fp32_results = Vec::with_capacity(test.len());
    let mut int8_results = Vec::with_capacity(test.len());
    let mut lsh_results = Vec::with_capacity(test.len());
    let mut tcam_results = Vec::with_capacity(test.len());
    for ((example, user), user_int8) in test.iter().zip(users.iter()).zip(users_int8.iter()) {
        let positive = example.positive_item;
        fp32_results.push((index_fp32.top_k(user, config.k, Metric::Cosine)?, positive));
        int8_results.push((
            index_int8.top_k(user_int8, config.k, Metric::Cosine)?,
            positive,
        ));
        let query_signature = lsh.signature(user_int8)?;
        lsh_results.push((
            RandomHyperplaneLsh::top_k_by_hamming(&query_signature, &signatures, config.k),
            positive,
        ));
        // Fixed radius: candidates ordered by Hamming distance (the post-filter order).
        let mut matches: Vec<(usize, u32)> =
            RandomHyperplaneLsh::within_radius(&query_signature, &signatures, config.radius)
                .into_iter()
                .map(|item| {
                    (
                        item,
                        RandomHyperplaneLsh::hamming(&query_signature, &signatures[item]),
                    )
                })
                .collect();
        matches.sort_by_key(|&(item, distance)| (distance, item));
        tcam_results.push((
            matches
                .into_iter()
                .map(|(item, _)| item)
                .collect::<Vec<_>>(),
            positive,
        ));
    }

    // AUC: score the held-out positive against sampled negatives per variant.
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(31).wrapping_add(7));
    let mut scored_fp32 = Vec::new();
    let mut scored_int8 = Vec::new();
    let mut scored_hamming = Vec::new();
    for ((example, user), user_int8) in test.iter().zip(users.iter()).zip(users_int8.iter()) {
        let query_signature = lsh.signature(user_int8)?;
        let score_all = |item: usize,
                         label: bool,
                         scored_fp32: &mut Vec<(f32, bool)>,
                         scored_int8: &mut Vec<(f32, bool)>,
                         scored_hamming: &mut Vec<(f32, bool)>| {
            scored_fp32.push((cosine_similarity(user, &items_fp32[item]), label));
            scored_int8.push((cosine_similarity(user_int8, &items_int8[item]), label));
            let distance = RandomHyperplaneLsh::hamming(&query_signature, &signatures[item]);
            scored_hamming.push((-(distance as f32), label));
        };
        score_all(
            example.positive_item,
            true,
            &mut scored_fp32,
            &mut scored_int8,
            &mut scored_hamming,
        );
        for _ in 0..config.negatives_per_user {
            let mut negative = rng.gen_range(0..config.dataset.num_items);
            while negative == example.positive_item {
                negative = rng.gen_range(0..config.dataset.num_items);
            }
            score_all(
                negative,
                false,
                &mut scored_fp32,
                &mut scored_int8,
                &mut scored_hamming,
            );
        }
    }

    let variant =
        |label: &str, results: &[(Vec<usize>, usize)], scored: &[(f32, bool)]| RetrievalVariant {
            label: label.to_string(),
            hit_rate: hit_rate(results),
            mrr: mean_reciprocal_rank(results),
            auc: roc_auc(scored),
            mean_candidates: results.iter().map(|(c, _)| c.len() as f64).sum::<f64>()
                / results.len().max(1) as f64,
        };
    let variants = vec![
        variant("fp32_cosine", &fp32_results, &scored_fp32),
        variant("int8_cosine", &int8_results, &scored_int8),
        variant("int8_lsh_hamming", &lsh_results, &scored_hamming),
        variant("int8_tcam_radius", &tcam_results, &scored_hamming),
    ];

    Ok(MovieLensAccuracyStudy {
        variants,
        training_improved: report.improved(),
        test_users: test.len(),
        max_quantization_error: epsilon_items,
        max_score_delta,
        score_delta_bound,
        deltas_within_bound,
    })
}

/// Configuration of the Criteo DLRM fp32-vs-int8 study.
#[derive(Debug, Clone, PartialEq)]
pub struct CriteoAccuracyConfig {
    /// The synthetic traffic generator.
    pub dataset: SyntheticCriteoConfig,
    /// Model configuration (must match the dataset's field shapes).
    pub model: DlrmConfig,
    /// Number of training samples drawn from the generator.
    pub train_samples: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Number of held-out samples scored for the AUC.
    pub eval_samples: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl CriteoAccuracyConfig {
    /// A configuration small enough for tests and smoke runs. The field cardinalities
    /// are chosen so the generator's head-value click rule has variance in every field
    /// (a field whose whole domain is "head" carries no signal).
    pub fn small() -> Self {
        let dataset = SyntheticCriteoConfig {
            num_dense_features: 4,
            sparse_cardinalities: vec![200, 100, 150, 300, 120, 250, 180, 90],
            popularity_exponent: 1.0,
            base_ctr: 0.3,
            seed: 5,
        };
        let model = DlrmConfig {
            num_dense_features: dataset.num_dense_features,
            sparse_cardinalities: dataset.sparse_cardinalities.clone(),
            embedding_dim: 8,
            bottom_hidden: vec![16, 8],
            top_hidden: vec![16, 1],
            seed: 3,
        };
        Self {
            dataset,
            model,
            train_samples: 3000,
            epochs: 6,
            eval_samples: 1000,
            learning_rate: 0.02,
        }
    }
}

/// The Criteo fp32-vs-int8 result.
#[derive(Debug, Clone, PartialEq)]
pub struct CriteoAccuracyStudy {
    /// CTR AUC of the fp32 model on held-out samples.
    pub auc_fp32: f64,
    /// CTR AUC of the same model with int8 round-tripped embedding tables.
    pub auc_int8: f64,
    /// Largest observed |p_fp32 − p_int8| over the held-out samples.
    pub max_prediction_delta: f32,
    /// Largest per-table quantization step of the int8 model.
    pub max_quantization_error: f32,
}

impl CriteoAccuracyStudy {
    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        StudyRow::new()
            .config_text("variant", "dlrm_criteo")
            .metric("auc_fp32", self.auc_fp32)
            .metric("auc_int8", self.auc_int8)
            .metric("auc_delta", self.auc_fp32 - self.auc_int8)
            .metric("max_prediction_delta", self.max_prediction_delta as f64)
            .metric("max_quantization_error", self.max_quantization_error as f64)
    }
}

/// Run the Criteo DLRM fp32-vs-int8 study: train briefly on synthetic traffic, quantize
/// the embedding tables, and compare the CTR AUC of both models on held-out samples.
///
/// # Errors
///
/// Propagates model errors for inconsistent configurations.
pub fn criteo_accuracy(config: &CriteoAccuracyConfig) -> Result<CriteoAccuracyStudy, CoreError> {
    let mut generator = SyntheticCriteo::new(config.dataset.clone());
    let mut model = Dlrm::new(config.model.clone())?;
    let train = generator.batch(config.train_samples);
    for _ in 0..config.epochs {
        for (sample, label) in &train {
            model.train_step(sample, *label, config.learning_rate)?;
        }
    }
    let (int8_model, max_quantization_error) = model.with_quantized_embeddings();

    let held_out = generator.batch(config.eval_samples);
    let samples: Vec<_> = held_out.iter().map(|(s, _)| s.clone()).collect();
    let fp32_scores = model.predict_batch(&samples)?;
    let int8_scores = int8_model.predict_batch(&samples)?;
    let mut max_prediction_delta = 0.0f32;
    let mut scored_fp32 = Vec::with_capacity(held_out.len());
    let mut scored_int8 = Vec::with_capacity(held_out.len());
    for (((_, label), &p_fp32), &p_int8) in held_out
        .iter()
        .zip(fp32_scores.iter())
        .zip(int8_scores.iter())
    {
        max_prediction_delta = max_prediction_delta.max((p_fp32 - p_int8).abs());
        scored_fp32.push((p_fp32, *label > 0.5));
        scored_int8.push((p_int8, *label > 0.5));
    }
    Ok(CriteoAccuracyStudy {
        auc_fp32: roc_auc(&scored_fp32),
        auc_int8: roc_auc(&scored_int8),
        max_prediction_delta,
        max_quantization_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movielens_accuracy_reproduces_the_paper_ordering() {
        let study = movielens_accuracy(&MovieLensAccuracyConfig::small()).unwrap();
        assert!(study.training_improved);
        assert_eq!(study.variants.len(), 4);
        let fp32 = study.variant("fp32_cosine").unwrap();
        let int8 = study.variant("int8_cosine").unwrap();
        let lsh = study.variant("int8_lsh_hamming").unwrap();
        // A trained model must beat random retrieval (k/items ≈ 6.7 %) by a wide margin.
        assert!(
            fp32.hit_rate > 3.0 * 20.0 / 300.0,
            "fp32 hit rate {}",
            fp32.hit_rate
        );
        // Quantization costs little; LSH costs more but stays useful.
        assert!(
            int8.hit_rate >= fp32.hit_rate - 0.1,
            "int8 {} vs fp32 {}",
            int8.hit_rate,
            fp32.hit_rate
        );
        assert!(lsh.auc > 0.5, "lsh auc {}", lsh.auc);
        assert!(fp32.auc > 0.55, "fp32 auc {}", fp32.auc);
        assert!(fp32.auc >= lsh.auc - 0.05);
    }

    #[test]
    fn quantization_deltas_respect_the_analytic_bound() {
        let study = movielens_accuracy(&MovieLensAccuracyConfig::small()).unwrap();
        assert!(study.deltas_within_bound);
        assert!(study.max_score_delta <= study.score_delta_bound + 1e-4);
        assert!(study.max_quantization_error > 0.0);
        assert!(study.max_score_delta > 0.0);
    }

    #[test]
    fn study_is_deterministic() {
        let a = movielens_accuracy(&MovieLensAccuracyConfig::small()).unwrap();
        let b = movielens_accuracy(&MovieLensAccuracyConfig::small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn criteo_int8_tracks_fp32_auc() {
        let study = criteo_accuracy(&CriteoAccuracyConfig::small()).unwrap();
        // The trained model must be better than chance, and quantization must not
        // destroy it.
        assert!(study.auc_fp32 > 0.55, "fp32 auc {}", study.auc_fp32);
        assert!(
            (study.auc_fp32 - study.auc_int8).abs() < 0.1,
            "fp32 {} vs int8 {}",
            study.auc_fp32,
            study.auc_int8
        );
        assert!(study.max_prediction_delta < 0.5);
        assert!(study.max_quantization_error > 0.0);
    }

    #[test]
    fn empty_split_is_rejected() {
        let mut config = MovieLensAccuracyConfig::small();
        config.dataset.num_users = 1;
        assert!(movielens_accuracy(&config).is_err());
    }
}
