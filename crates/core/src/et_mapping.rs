//! Embedding-table-to-CMA mapping (Sec. III-B of the paper, summarized in Table I).
//!
//! The rules, quoted from the paper:
//!
//! * "Each row on the CMA represents an entry of an ET."
//! * "The number of CMAs needed to store an ET is n/R where n is the number of entries in
//!   the ET and R is the number of rows in the CMA. If n/R < C, we only need one mat,
//!   otherwise the number of mats needed to be activated is equal to n/(RC)."
//! * "Each sparse feature is mapped to a separate bank."
//! * "The number of arrays is rounded up to the nearest power-of-two value."
//! * "We use a 256 LSH signature length which requires 2 CMAs to store a single entry"
//!   (the ItET rows carry the extra signature bits).

use serde::{Deserialize, Serialize};

use imars_fabric::FabricConfig;

use crate::error::CoreError;

/// Static description of one embedding table to be mapped.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EtSpec {
    /// Table name (for reporting).
    pub name: String,
    /// Number of entries (rows) in the table.
    pub rows: usize,
    /// Whether each entry additionally stores an LSH signature (the ItET of the filtering
    /// stage), doubling its CMA footprint at the paper's 256-bit signature length.
    pub stores_lsh_signature: bool,
}

impl EtSpec {
    /// A plain embedding table.
    pub fn new(name: impl Into<String>, rows: usize) -> Self {
        Self {
            name: name.into(),
            rows,
            stores_lsh_signature: false,
        }
    }

    /// An item embedding table that also stores per-entry LSH signatures.
    pub fn with_lsh(name: impl Into<String>, rows: usize) -> Self {
        Self {
            name: name.into(),
            rows,
            stores_lsh_signature: true,
        }
    }
}

/// Where one embedding table landed in the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TablePlacement {
    /// The mapped table.
    pub spec: EtSpec,
    /// Bank index assigned to the table (one sparse feature per bank).
    pub bank: usize,
    /// Number of CMAs the table occupies (before power-of-two rounding).
    pub cmas_exact: usize,
    /// Number of CMAs after rounding up to the nearest power of two.
    pub cmas_allocated: usize,
    /// Number of mats that must be activated to serve the table.
    pub mats_activated: usize,
}

/// The memory-mapping summary the paper reports per workload in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingSummary {
    /// Number of embedding tables mapped.
    pub tables: usize,
    /// Number of active banks.
    pub banks: usize,
    /// Number of active mats.
    pub mats: usize,
    /// Number of active CMAs (power-of-two-rounded allocation).
    pub cmas: usize,
    /// Largest single-table row count.
    pub max_rows: usize,
    /// Smallest single-table row count.
    pub min_rows: usize,
}

/// The full mapping of a workload's embedding tables onto the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EtMapping {
    placements: Vec<TablePlacement>,
    config_banks: usize,
    config_mats_per_bank: usize,
    config_cmas_per_mat: usize,
}

/// Round `value` up to the nearest power of two (minimum 1).
pub fn next_power_of_two(value: usize) -> usize {
    value.max(1).next_power_of_two()
}

impl EtMapping {
    /// Map a list of embedding tables onto the fabric configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Mapping`] if there are more tables than banks, if a table is
    /// empty, or if any single table exceeds the capacity of one bank (the paper's design
    /// dimensions banks for the largest evaluated table).
    pub fn map(specs: &[EtSpec], config: &FabricConfig) -> Result<Self, CoreError> {
        if specs.is_empty() {
            return Err(CoreError::Mapping {
                reason: "at least one embedding table is required".to_string(),
            });
        }
        if specs.len() > config.banks {
            return Err(CoreError::Mapping {
                reason: format!(
                    "{} sparse features need {} banks but the fabric has only {}",
                    specs.len(),
                    specs.len(),
                    config.banks
                ),
            });
        }
        let rows_per_cma = config.cma_rows;
        let bank_capacity_cmas = config.mats_per_bank * config.cmas_per_mat;
        let mut placements = Vec::with_capacity(specs.len());
        for (bank, spec) in specs.iter().enumerate() {
            if spec.rows == 0 {
                return Err(CoreError::Mapping {
                    reason: format!("embedding table `{}` has no rows", spec.name),
                });
            }
            // An LSH-carrying entry occupies two CMA rows' worth of columns, i.e. the
            // table needs twice the arrays.
            let cma_multiplier = if spec.stores_lsh_signature { 2 } else { 1 };
            let cmas_exact = spec.rows.div_ceil(rows_per_cma) * cma_multiplier;
            let cmas_allocated = next_power_of_two(cmas_exact);
            let mats_activated = cmas_exact.div_ceil(config.cmas_per_mat).max(1);
            if cmas_allocated > bank_capacity_cmas {
                return Err(CoreError::Mapping {
                    reason: format!(
                        "embedding table `{}` needs {} CMAs but a bank holds only {}",
                        spec.name, cmas_allocated, bank_capacity_cmas
                    ),
                });
            }
            placements.push(TablePlacement {
                spec: spec.clone(),
                bank,
                cmas_exact,
                cmas_allocated,
                mats_activated,
            });
        }
        Ok(Self {
            placements,
            config_banks: config.banks,
            config_mats_per_bank: config.mats_per_bank,
            config_cmas_per_mat: config.cmas_per_mat,
        })
    }

    /// Per-table placements in mapping order.
    pub fn placements(&self) -> &[TablePlacement] {
        &self.placements
    }

    /// Placement of the table with the given name.
    pub fn placement(&self, name: &str) -> Option<&TablePlacement> {
        self.placements.iter().find(|p| p.spec.name == name)
    }

    /// The Table-I-style summary of the mapping.
    pub fn summary(&self) -> MappingSummary {
        MappingSummary {
            tables: self.placements.len(),
            banks: self.placements.len(),
            mats: self.placements.iter().map(|p| p.mats_activated).sum(),
            cmas: self.placements.iter().map(|p| p.cmas_allocated).sum(),
            max_rows: self
                .placements
                .iter()
                .map(|p| p.spec.rows)
                .max()
                .unwrap_or(0),
            min_rows: self
                .placements
                .iter()
                .map(|p| p.spec.rows)
                .min()
                .unwrap_or(0),
        }
    }

    /// Fraction of the fabric's CMAs activated by this mapping.
    pub fn utilization(&self) -> f64 {
        let total =
            (self.config_banks * self.config_mats_per_bank * self.config_cmas_per_mat) as f64;
        self.summary().cmas as f64 / total
    }

    /// Number of intra-bank accumulation rounds needed to pool across the mats of the
    /// busiest table (1 when at most `fan_in` mats are active).
    pub fn worst_case_accumulation_rounds(&self, fan_in: usize) -> usize {
        self.placements
            .iter()
            .map(|p| p.mats_activated.div_ceil(fan_in.max(1)))
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::RecsysWorkload;

    fn config() -> FabricConfig {
        FabricConfig::paper_design_point()
    }

    #[test]
    fn power_of_two_rounding() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(118), 128);
        assert_eq!(next_power_of_two(128), 128);
    }

    #[test]
    fn paper_example_30000_entries_needs_128_arrays_and_4_mats() {
        // Sec. IV: "the maximum size of the ETs in the Criteo Kaggle is 30,000 entries.
        // Since each CMA has 256 rows, 118 CMAs are required ... rounded up to ... 128",
        // with 4 mats of C = 32 working in parallel.
        let mapping = EtMapping::map(&[EtSpec::new("big", 30_000)], &config()).unwrap();
        let placement = &mapping.placements()[0];
        assert_eq!(placement.cmas_exact, 118);
        assert_eq!(placement.cmas_allocated, 128);
        assert_eq!(placement.mats_activated, 4);
    }

    #[test]
    fn small_table_fits_one_cma_and_one_mat() {
        let mapping = EtMapping::map(&[EtSpec::new("tiny", 3)], &config()).unwrap();
        let placement = &mapping.placements()[0];
        assert_eq!(placement.cmas_exact, 1);
        assert_eq!(placement.cmas_allocated, 1);
        assert_eq!(placement.mats_activated, 1);
    }

    #[test]
    fn lsh_table_doubles_its_cma_footprint() {
        let plain = EtMapping::map(&[EtSpec::new("itet", 3706)], &config()).unwrap();
        let lsh = EtMapping::map(&[EtSpec::with_lsh("itet", 3706)], &config()).unwrap();
        assert_eq!(
            lsh.placements()[0].cmas_exact,
            2 * plain.placements()[0].cmas_exact
        );
    }

    #[test]
    fn each_sparse_feature_gets_its_own_bank() {
        let specs: Vec<EtSpec> = (0..5).map(|i| EtSpec::new(format!("t{i}"), 100)).collect();
        let mapping = EtMapping::map(&specs, &config()).unwrap();
        let banks: Vec<usize> = mapping.placements().iter().map(|p| p.bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4]);
        assert_eq!(mapping.summary().banks, 5);
    }

    #[test]
    fn criteo_mapping_matches_paper_bank_count() {
        let workload = RecsysWorkload::criteo_ranking();
        let mapping = EtMapping::map(&workload.et_specs(), &config()).unwrap();
        let summary = mapping.summary();
        // Table I: 26 banks for the 26 sparse features; the largest ET is 30,000 rows.
        assert_eq!(summary.banks, 26);
        assert_eq!(summary.max_rows, 30_000);
        // The busiest table activates all 4 mats of its bank.
        assert_eq!(
            mapping.placements().iter().map(|p| p.mats_activated).max(),
            Some(4)
        );
        assert!(summary.mats >= 26);
        assert!(summary.cmas > 1000);
        assert!(mapping.utilization() <= 1.0);
    }

    #[test]
    fn movielens_mapping_matches_paper_bank_count() {
        let workload = RecsysWorkload::movielens_ranking();
        let mapping = EtMapping::map(&workload.et_specs(), &config()).unwrap();
        let summary = mapping.summary();
        // Table I: 7 active banks (6 UIETs + ItET), ETs between 2 and 3,706 rows.
        assert_eq!(summary.banks, 7);
        assert_eq!(summary.max_rows, 3706);
        assert_eq!(summary.min_rows, 2);
        // Paper: 8 active mats, 54 active CMAs — the exact-allocation count lands nearby
        // (it depends on the exact per-table cardinalities of the original preprocessing).
        assert!(
            summary.mats >= 7 && summary.mats <= 10,
            "mats {}",
            summary.mats
        );
        assert!(
            summary.cmas >= 30 && summary.cmas <= 70,
            "cmas {}",
            summary.cmas
        );
    }

    #[test]
    fn mapping_errors() {
        assert!(EtMapping::map(&[], &config()).is_err());
        assert!(EtMapping::map(&[EtSpec::new("empty", 0)], &config()).is_err());
        let too_many: Vec<EtSpec> = (0..40).map(|i| EtSpec::new(format!("t{i}"), 10)).collect();
        assert!(EtMapping::map(&too_many, &config()).is_err());
        // A table larger than one bank's capacity is rejected.
        let huge = EtSpec::new("huge", 256 * 32 * 4 * 2);
        assert!(EtMapping::map(&[huge], &config()).is_err());
    }

    #[test]
    fn accumulation_rounds_follow_mat_count() {
        let mapping = EtMapping::map(&[EtSpec::new("big", 30_000)], &config()).unwrap();
        assert_eq!(mapping.worst_case_accumulation_rounds(4), 1);
        assert_eq!(mapping.worst_case_accumulation_rounds(2), 2);
        assert_eq!(mapping.worst_case_accumulation_rounds(1), 4);
    }

    #[test]
    fn placement_lookup_by_name() {
        let workload = RecsysWorkload::movielens_filtering();
        let mapping = EtMapping::map(&workload.et_specs(), &config()).unwrap();
        assert!(mapping.placement("itet.movie").is_some());
        assert!(mapping.placement("does-not-exist").is_none());
    }
}
