//! The generic study/sweep runner behind every paper-reproduction experiment.
//!
//! Every evaluation driver in this crate (ET-lookup study, NNS comparison, accuracy
//! study, pipeline breakdown, end-to-end FOMs, design-space sweeps) reports its results
//! through one machine-readable shape: a [`Study`] — a named, seeded list of rows, each
//! pairing a configuration point with its measured/modeled metrics. Studies serialize to
//! deterministic JSON (same inputs + same seed → byte-identical output, pinned by tests)
//! and land next to the bench harness summaries under `target/imars-bench/`, so CI can
//! archive the whole experimental record of a run.
//!
//! [`SweepGrid`] produces cartesian parameter grids for the design-space benches, and
//! [`FomComparison`] is the shared "iMARS column vs GPU column" row every study ends
//! with.

use std::fmt::Write as _;
use std::path::PathBuf;

use imars_fabric::Cost;
use imars_gpu::GpuCost;

/// A configuration value: numeric axes (array size, radius, ...) or discrete labels
/// (workload names, placement policies).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A numeric configuration value.
    Num(f64),
    /// A textual configuration value.
    Text(String),
}

/// One row of a study: a configuration point plus the metrics observed there.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StudyRow {
    /// Named configuration values, in insertion order.
    pub config: Vec<(String, ParamValue)>,
    /// Named metric values, in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl StudyRow {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric configuration value.
    pub fn config_num(mut self, name: &str, value: f64) -> Self {
        self.config.push((name.to_string(), ParamValue::Num(value)));
        self
    }

    /// Add a textual configuration value.
    pub fn config_text(mut self, name: &str, value: &str) -> Self {
        self.config
            .push((name.to_string(), ParamValue::Text(value.to_string())));
        self
    }

    /// Prepend a textual configuration value, so it leads the rendered config object —
    /// how the sweep drivers tag prebuilt rows with their axis.
    pub fn config_text_front(mut self, name: &str, value: &str) -> Self {
        self.config
            .insert(0, (name.to_string(), ParamValue::Text(value.to_string())));
        self
    }

    /// Add a metric.
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Look up a metric by name.
    pub fn get_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// A named, seeded collection of study rows with deterministic JSON serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Study {
    name: String,
    seed: u64,
    notes: Vec<(String, String)>,
    rows: Vec<StudyRow>,
}

impl Study {
    /// Create an empty study. `seed` is the seed every stochastic part of the study must
    /// derive its RNG from — it is recorded in the report so a run can be reproduced.
    pub fn new(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            seed,
            notes: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// The study name (also the JSON file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The seed recorded for this study.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Attach a free-form note (generator description, units, caveats).
    pub fn note(&mut self, key: &str, value: &str) {
        self.notes.push((key.to_string(), value.to_string()));
    }

    /// Append one row.
    pub fn push(&mut self, row: StudyRow) {
        self.rows.push(row);
    }

    /// The rows recorded so far.
    pub fn rows(&self) -> &[StudyRow] {
        &self.rows
    }

    /// Serialize the study to JSON. The output is deterministic: identical studies
    /// produce byte-identical strings (floats are formatted with a fixed rule, maps keep
    /// insertion order).
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\n  \"study\": \"{}\",\n  \"seed\": {},\n  \"notes\": {{",
            escape(&self.name),
            self.seed
        );
        for (i, (key, value)) in self.notes.iter().enumerate() {
            let _ = write!(
                json,
                "{}\n    \"{}\": \"{}\"",
                if i == 0 { "" } else { "," },
                escape(key),
                escape(value)
            );
        }
        json.push_str("\n  },\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                json,
                "{}\n    {{\"config\": {{",
                if i == 0 { "" } else { "," }
            );
            for (j, (key, value)) in row.config.iter().enumerate() {
                let rendered = match value {
                    ParamValue::Num(v) => format_number(*v),
                    ParamValue::Text(s) => format!("\"{}\"", escape(s)),
                };
                let _ = write!(
                    json,
                    "{}\"{}\": {}",
                    if j == 0 { "" } else { ", " },
                    escape(key),
                    rendered
                );
            }
            json.push_str("}, \"metrics\": {");
            for (j, (key, value)) in row.metrics.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}\"{}\": {}",
                    if j == 0 { "" } else { ", " },
                    escape(key),
                    format_number(*value)
                );
            }
            json.push_str("}}");
        }
        json.push_str("\n  ]\n}\n");
        json
    }

    /// Write the JSON report to `<dir>/<name>.json`, where `dir` is the
    /// `IMARS_STUDY_OUT_DIR` environment variable or `target/imars-bench`. Returns the
    /// path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = match std::env::var_os("IMARS_STUDY_OUT_DIR") {
            Some(dir) => PathBuf::from(dir),
            None => PathBuf::from("target").join("imars-bench"),
        };
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Format a float as a deterministic JSON number: plain fixed-point in the readable
/// range, scientific notation outside it (so sub-nanosecond latencies and 10⁴-class
/// speedups both survive), and bare integers without a fraction.
pub fn format_number(value: f64) -> String {
    if !value.is_finite() {
        // JSON has no Inf/NaN; clamp to null-ish sentinel the parser side can detect.
        return "null".to_string();
    }
    if value == 0.0 {
        return "0".to_string();
    }
    if value.fract() == 0.0 && value.abs() < 1e15 {
        return format!("{}", value as i64);
    }
    let magnitude = value.abs();
    if (1e-3..1e9).contains(&magnitude) {
        // Nine decimals keep >= 7 significant digits down to the 1e-3 boundary.
        let formatted = if magnitude < 1.0 {
            format!("{value:.9}")
        } else {
            format!("{value:.6}")
        };
        // Trim trailing zeros but keep at least one fractional digit.
        let trimmed = formatted.trim_end_matches('0');
        let trimmed = if trimmed.ends_with('.') {
            &formatted[..trimmed.len() + 1]
        } else {
            trimmed
        };
        trimmed.to_string()
    } else {
        format!("{value:e}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One axis of a design-space sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Axis name (becomes the config key of every point).
    pub name: String,
    /// The values to visit, in order.
    pub values: Vec<f64>,
}

/// A cartesian grid over named axes. Points are enumerated with the **last axis varying
/// fastest** (row-major), deterministically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepGrid {
    axes: Vec<SweepAxis>,
}

impl SweepGrid {
    /// An empty grid (one empty point).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an axis.
    pub fn axis(mut self, name: &str, values: &[f64]) -> Self {
        self.axes.push(SweepAxis {
            name: name.to_string(),
            values: values.to_vec(),
        });
        self
    }

    /// The axes in insertion order.
    pub fn axes(&self) -> &[SweepAxis] {
        &self.axes
    }

    /// Number of points in the grid.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Whether the grid has no points (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate every point as `(axis name, value)` pairs in axis order.
    pub fn points(&self) -> Vec<Vec<(String, f64)>> {
        let mut points = vec![Vec::new()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(points.len() * axis.values.len());
            for point in &points {
                for &value in &axis.values {
                    let mut extended = point.clone();
                    extended.push((axis.name.clone(), value));
                    next.push(extended);
                }
            }
            points = next;
        }
        points
    }
}

/// The iMARS column versus the GPU column of one figure of merit: the shape every study
/// reduces to.
#[derive(Debug, Clone, PartialEq)]
pub struct FomComparison {
    /// What is being compared (workload or operation name).
    pub label: String,
    /// Modeled iMARS cost of the operation.
    pub imars: Cost,
    /// Modeled GPU cost of the operation.
    pub gpu: GpuCost,
}

impl FomComparison {
    /// Create a comparison row.
    pub fn new(label: &str, imars: Cost, gpu: GpuCost) -> Self {
        Self {
            label: label.to_string(),
            imars,
            gpu,
        }
    }

    /// GPU latency divided by iMARS latency (the paper's improvement factor).
    pub fn latency_speedup(&self) -> f64 {
        self.gpu.latency_us / self.imars.latency_us().max(f64::MIN_POSITIVE)
    }

    /// GPU energy divided by iMARS energy.
    pub fn energy_ratio(&self) -> f64 {
        self.gpu.energy_uj / self.imars.energy_uj().max(f64::MIN_POSITIVE)
    }

    /// Render as a study row (latencies in µs, energies in µJ, ratios unitless).
    pub fn study_row(&self) -> StudyRow {
        StudyRow::new()
            .config_text("comparison", &self.label)
            .metric("imars_latency_us", self.imars.latency_us())
            .metric("imars_energy_uj", self.imars.energy_uj())
            .metric("gpu_latency_us", self.gpu.latency_us)
            .metric("gpu_energy_uj", self.gpu.energy_uj)
            .metric("latency_speedup", self.latency_speedup())
            .metric("energy_ratio", self.energy_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_study() -> Study {
        let mut study = Study::new("unit_test_study", 42);
        study.note("generator", "synthetic");
        study.push(
            StudyRow::new()
                .config_text("workload", "movielens")
                .config_num("radius", 100.0)
                .metric("recall", 0.93)
                .metric("latency_ns", 0.2),
        );
        study.push(
            StudyRow::new()
                .config_num("rows", 256.0)
                .metric("speedup", 38000.0),
        );
        study
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let a = sample_study().to_json();
        let b = sample_study().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"study\": \"unit_test_study\""));
        assert!(a.contains("\"seed\": 42"));
        assert!(a.contains("\"radius\": 100"));
        assert!(a.contains("\"recall\": 0.93"));
        assert!(!a.contains(",\n  ]"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_control_characters() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line1\nline2\tend\r"), "line1\\nline2\\tend\\r");
        assert_eq!(escape("bell\u{7}"), "bell\\u0007");
        let mut study = Study::new("escape_probe", 0);
        study.note("multi", "first\nsecond");
        let json = study.to_json();
        assert!(json.contains("first\\nsecond"));
        assert!(!json.contains("first\nsecond"));
    }

    #[test]
    fn config_text_front_leads_the_config() {
        let row = StudyRow::new()
            .config_num("radius", 90.0)
            .config_text_front("axis", "search_radius");
        assert_eq!(row.config[0].0, "axis");
        assert_eq!(row.config[1].0, "radius");
    }

    #[test]
    fn number_formatting_is_stable_across_magnitudes() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(256.0), "256");
        assert_eq!(format_number(-3.0), "-3");
        assert_eq!(format_number(0.93), "0.93");
        assert_eq!(format_number(2.07e-7), "2.07e-7");
        assert_eq!(format_number(3.8e15), format!("{:e}", 3.8e15));
        assert_eq!(format_number(380_000_000_000_000.0), "380000000000000");
        assert_eq!(format_number(f64::NAN), "null");
        // Sub-1e-3 values switch to scientific notation so no significant digits drop.
        assert_eq!(format_number(1.23456e-4), format!("{:e}", 1.23456e-4));
        assert_eq!(format_number(0.00123456), "0.00123456");
        // Round trip through a JSON-compatible parse.
        for v in [
            0.2,
            123.456,
            1e-9,
            4.2e12,
            -0.000213,
            0.00123456,
            0.056789123,
        ] {
            let parsed: f64 = format_number(v).parse().unwrap();
            assert!((parsed - v).abs() <= v.abs() * 1e-6, "{v}");
        }
    }

    #[test]
    fn sweep_grid_enumerates_cartesian_product_in_order() {
        let grid = SweepGrid::new()
            .axis("a", &[1.0, 2.0])
            .axis("b", &[10.0, 20.0, 30.0]);
        assert_eq!(grid.len(), 6);
        assert!(!grid.is_empty());
        let points = grid.points();
        assert_eq!(points.len(), 6);
        assert_eq!(
            points[0],
            vec![("a".to_string(), 1.0), ("b".to_string(), 10.0)]
        );
        assert_eq!(
            points[1],
            vec![("a".to_string(), 1.0), ("b".to_string(), 20.0)]
        );
        assert_eq!(
            points[5],
            vec![("a".to_string(), 2.0), ("b".to_string(), 30.0)]
        );
        // Determinism.
        assert_eq!(points, grid.points());
    }

    #[test]
    fn empty_grid_and_empty_axis() {
        assert_eq!(SweepGrid::new().points(), vec![Vec::new()]);
        assert_eq!(SweepGrid::new().len(), 1);
        let degenerate = SweepGrid::new().axis("a", &[]);
        assert!(degenerate.is_empty());
        assert!(degenerate.points().is_empty());
    }

    #[test]
    fn fom_comparison_computes_ratios() {
        let comparison = FomComparison::new(
            "et_lookup",
            Cost::new(2_000.0, 200.0), // 2e-3 uJ, 0.2 us
            GpuCost {
                latency_us: 10.0,
                energy_uj: 220.0,
            },
        );
        assert!((comparison.latency_speedup() - 50.0).abs() < 1e-9);
        assert!((comparison.energy_ratio() - 110_000.0).abs() < 1e-6);
        let row = comparison.study_row();
        assert_eq!(row.get_metric("gpu_latency_us"), Some(10.0));
        assert!(row.get_metric("latency_speedup").unwrap() > 1.0);
    }

    #[test]
    fn study_row_lookup() {
        let row = StudyRow::new().metric("x", 1.5);
        assert_eq!(row.get_metric("x"), Some(1.5));
        assert_eq!(row.get_metric("y"), None);
    }
}
