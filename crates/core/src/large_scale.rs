//! The paper-scale offline study: MovieLens-1M-sized accuracy plus a multi-million-row
//! Zipf replay through the serving stack.
//!
//! The iMARS evaluation runs at two scales this workspace's CI-sized studies do not:
//! the *real* MovieLens-1M cardinalities (6040 users × 3706 items) for the accuracy
//! argument, and catalogues in the millions of rows for the serving argument. This
//! module is the offline driver for both legs:
//!
//! * **Accuracy** — [`movielens_accuracy`] at the ML-1M dataset shape (train the
//!   YouTubeDNN filtering tower, retrieve under fp32/int8/LSH/TCAM, score hit rate /
//!   MRR / AUC);
//! * **Replay** — a multi-million-row Zipf replay through [`ServeEngine`] in both
//!   served precisions, recording throughput (served + modeled qps), the latency tail
//!   (p50/p95/p99), the cache hit rate, and the arena-accounted resident bytes of the
//!   catalogue ([`ServeEngine::catalogue_resident_bytes`] — one allocation per dtype,
//!   which is the memory win of the [`RowArena`](imars_recsys::RowArena) storage layer).
//!
//! The workload and both legs are fully seeded: the accuracy numbers, modeled
//! throughput, cache hit rates and memory accounting are byte-deterministic across
//! runs (pinned by a test on the CI-sized proxy). Served qps and the latency tail are
//! *measured* on the real clock and vary run to run — that is what the study is for.
//! CI runs only [`LargeScaleConfig::smoke`]; the full [`LargeScaleConfig::paper`]
//! grid is the offline `large_scale` example.

use imars_datasets::SyntheticMovieLensConfig;
use imars_recsys::dlrm::Dlrm;
use imars_recsys::training::TrainingConfig;
use imars_recsys::EmbeddingTable;
use imars_serve::{ReplayConfig, ReplayWorkload, ServeConfig, ServeEngine, ServePrecision};

use crate::accuracy::{movielens_accuracy, MovieLensAccuracyConfig, MovieLensAccuracyStudy};
use crate::end_to_end::serve_model;
use crate::error::CoreError;
use crate::system::{Study, StudyRow};

/// Configuration of the replay leg: one seeded Zipf workload replayed through the
/// engine once per served precision.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeReplayConfig {
    /// Catalogue size in rows (multi-million at paper scale).
    pub num_items: usize,
    /// Embedding shards.
    pub shards: usize,
    /// Queries replayed per precision.
    pub queries: usize,
    /// Distinct users in the workload.
    pub num_users: usize,
    /// Rows pooled per query (the user-history length).
    pub history_len: usize,
    /// Zipf exponent of the item popularity.
    pub zipf_exponent: f64,
    /// Hot-row cache capacity in rows.
    pub cache_capacity: usize,
    /// LSH signature width in bits. Paper scale uses 64 (one word) so the TCAM scan
    /// over millions of rows stays tractable on one core.
    pub signature_bits: usize,
    /// TCAM fixed radius, tuned so the candidate set stays O(100) per query.
    pub search_radius: u32,
    /// Precisions to replay (each gets its own engine over the same workload).
    pub precisions: Vec<ServePrecision>,
    /// Workload seed.
    pub seed: u64,
}

impl LargeReplayConfig {
    /// CI-sized proxy: a few thousand rows, a few hundred queries — same code path,
    /// minutes of margin.
    pub fn smoke() -> Self {
        Self {
            num_items: 4096,
            shards: 8,
            queries: 256,
            num_users: 128,
            history_len: 16,
            zipf_exponent: 1.1,
            cache_capacity: 256,
            signature_bits: 64,
            search_radius: 20,
            precisions: vec![ServePrecision::Fp32, ServePrecision::Int8],
            seed: 97,
        }
    }

    /// Paper scale: a two-million-row catalogue behind 8 shards, a few thousand Zipf
    /// queries per precision.
    pub fn paper() -> Self {
        Self {
            num_items: 2_000_000,
            shards: 8,
            queries: 2_000,
            num_users: 1_000,
            history_len: 32,
            zipf_exponent: 1.1,
            cache_capacity: 65_536,
            signature_bits: 64,
            search_radius: 18,
            precisions: vec![ServePrecision::Fp32, ServePrecision::Int8],
            seed: 97,
        }
    }
}

/// Configuration of the full study: both legs.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeScaleConfig {
    /// The accuracy leg (ML-1M-shaped at paper scale).
    pub accuracy: MovieLensAccuracyConfig,
    /// The replay leg.
    pub replay: LargeReplayConfig,
}

impl LargeScaleConfig {
    /// The CI proxy: small synthetic MovieLens, small catalogue — every code path of
    /// the paper run at a fraction of the cost.
    pub fn smoke() -> Self {
        let mut accuracy = MovieLensAccuracyConfig::small();
        accuracy.training.epochs = 2;
        Self {
            accuracy,
            replay: LargeReplayConfig::smoke(),
        }
    }

    /// Paper scale: the real MovieLens-1M cardinalities and a two-million-row replay.
    pub fn paper() -> Self {
        Self {
            accuracy: MovieLensAccuracyConfig {
                dataset: SyntheticMovieLensConfig::movielens_1m(),
                embedding_dim: 16,
                filtering_hidden: vec![32, 16],
                training: TrainingConfig {
                    epochs: 2,
                    learning_rate: 0.05,
                    negatives_per_positive: 4,
                    seed: 1,
                },
                k: 20,
                signature_bits: 128,
                radius: 52,
                negatives_per_user: 20,
                holdout_every: 5,
                seed: 11,
            },
            replay: LargeReplayConfig::paper(),
        }
    }
}

/// One measured replay point (one precision over the shared workload).
#[derive(Debug, Clone, PartialEq)]
pub struct LargeReplayPoint {
    /// Served precision of this point.
    pub precision: ServePrecision,
    /// Catalogue rows.
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Arena-accounted bytes of resident item-row storage (one allocation).
    pub catalogue_bytes: usize,
    /// Queries replayed.
    pub queries: u64,
    /// Throughput over the simulated makespan (arrival pacing included).
    pub served_qps: f64,
    /// Deterministic modeled throughput (queries over modeled GPCiM + bus latency).
    pub modeled_qps: f64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Hot-row cache hit rate over the replay.
    pub hit_rate: f64,
    /// Mean TCAM candidates surfaced per query.
    pub mean_candidates: f64,
}

impl LargeReplayPoint {
    fn precision_label(&self) -> &'static str {
        match self.precision {
            ServePrecision::Fp32 => "fp32",
            ServePrecision::Int8 => "int8",
        }
    }

    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        StudyRow::new()
            .config_text("axis", "replay")
            .config_text("precision", self.precision_label())
            .config_num("rows", self.rows as f64)
            .config_num("dim", self.dim as f64)
            .metric("catalogue_bytes", self.catalogue_bytes as f64)
            .metric("served_qps", self.served_qps)
            .metric("modeled_qps", self.modeled_qps)
            .metric("latency_p50_us", self.p50_us)
            .metric("latency_p95_us", self.p95_us)
            .metric("latency_p99_us", self.p99_us)
            .metric("latency_mean_us", self.mean_us)
            .metric("cache_hit_rate", self.hit_rate)
            .metric("mean_candidates", self.mean_candidates)
    }
}

/// The full study result: both legs plus the configuration that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeScaleOutcome {
    /// The configuration the study ran with.
    pub config: LargeScaleConfig,
    /// The accuracy leg's result.
    pub accuracy: MovieLensAccuracyStudy,
    /// One replay point per served precision.
    pub replay: Vec<LargeReplayPoint>,
}

impl LargeScaleOutcome {
    /// Render the study: accuracy-variant rows plus one replay row per precision.
    /// Accuracy and modeled metrics are deterministic for a fixed config; measured
    /// throughput/latency metrics carry real wall-clock jitter.
    pub fn study(&self) -> Study {
        let mut study = Study::new("large_scale", self.config.replay.seed);
        study.note(
            "method",
            "two legs: (1) synthetic MovieLens at the configured cardinalities, \
             leave-one-out filtering accuracy under fp32/int8/LSH/TCAM; (2) one seeded \
             Zipf replay per served precision through the sharded serve engine on the \
             simulated clock, catalogue resident bytes accounted by the shared row \
             arena (one allocation per dtype)",
        );
        study.note(
            "scale",
            &format!(
                "{} users x {} items (accuracy), {} rows x {} queries (replay)",
                self.config.accuracy.dataset.num_users,
                self.config.accuracy.dataset.num_items,
                self.config.replay.num_items,
                self.config.replay.queries,
            ),
        );
        for variant in &self.accuracy.variants {
            study.push(variant.study_row().config_text_front("axis", "accuracy"));
        }
        for point in &self.replay {
            study.push(point.study_row());
        }
        study
    }
}

fn serve_error(error: imars_serve::ServeError) -> CoreError {
    CoreError::InvalidExperiment {
        reason: format!("large-scale replay failed: {error}"),
    }
}

/// Run the replay leg alone: generate one seeded Zipf workload over the catalogue and
/// replay it through a fresh engine per precision.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] when the replay cannot be configured or
/// fails mid-run.
pub fn run_large_replay(config: &LargeReplayConfig) -> Result<Vec<LargeReplayPoint>, CoreError> {
    let model_config = serve_model();
    let dim = model_config.num_dense_features;
    let items = EmbeddingTable::new(config.num_items, dim, 77)?;
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries: config.queries,
        num_users: config.num_users.max(1),
        num_items: config.num_items,
        zipf_exponent: config.zipf_exponent,
        history_len: config.history_len,
        offered_qps: 4_000.0,
        candidates_per_query: 100,
        top_k: 10,
        sparse_cardinalities: model_config.sparse_cardinalities.clone(),
        seed: config.seed,
        item_permutation_seed: None,
    })
    .map_err(serve_error)?;
    let mut points = Vec::new();
    for &precision in &config.precisions {
        let mut serve_config =
            ServeConfig::paper_serving(config.cache_capacity).map_err(serve_error)?;
        serve_config.shards = config.shards.min(config.num_items.max(1));
        serve_config.precision = precision;
        serve_config.signature_bits = config.signature_bits;
        serve_config.search_radius = config.search_radius;
        let model = Dlrm::new(model_config.clone())?;
        let mut engine = ServeEngine::new(model, &items, serve_config).map_err(serve_error)?;
        let outcome = engine.replay(&workload).map_err(serve_error)?;
        let telemetry = &outcome.report.telemetry;
        points.push(LargeReplayPoint {
            precision,
            rows: config.num_items,
            dim,
            catalogue_bytes: engine
                .catalogue_resident_bytes()
                .expect("in-process engine accounts its arena"),
            queries: telemetry.queries,
            served_qps: telemetry.served_qps(),
            modeled_qps: telemetry.modeled_qps(),
            p50_us: telemetry.latency.quantile_us(0.50),
            p95_us: telemetry.latency.quantile_us(0.95),
            p99_us: telemetry.latency.quantile_us(0.99),
            mean_us: telemetry.latency.mean_us(),
            hit_rate: outcome.report.cache.hit_rate(),
            mean_candidates: telemetry.mean_candidates(),
        });
    }
    Ok(points)
}

/// Run both legs of the study.
///
/// # Errors
///
/// Propagates accuracy-study and replay errors.
pub fn run_large_scale(config: &LargeScaleConfig) -> Result<LargeScaleOutcome, CoreError> {
    let accuracy = movielens_accuracy(&config.accuracy)?;
    let replay = run_large_replay(&config.replay)?;
    Ok(LargeScaleOutcome {
        config: config.clone(),
        accuracy,
        replay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_replay_measures_throughput_latency_and_memory() {
        let config = LargeReplayConfig::smoke();
        let points = run_large_replay(&config).unwrap();
        assert_eq!(points.len(), config.precisions.len());
        for point in &points {
            assert_eq!(point.queries, config.queries as u64);
            assert!(point.served_qps > 0.0, "{point:?}");
            assert!(point.modeled_qps > 0.0, "{point:?}");
            assert!(
                point.p50_us > 0.0 && point.p50_us <= point.p99_us,
                "{point:?}"
            );
            assert!((0.0..=1.0).contains(&point.hit_rate));
        }
        // The arena accounts exactly one allocation per dtype: rows x dim elements.
        let fp32 = &points[0];
        let int8 = &points[1];
        assert_eq!(
            fp32.catalogue_bytes,
            config.num_items * fp32.dim * std::mem::size_of::<f32>()
        );
        assert_eq!(int8.catalogue_bytes, config.num_items * int8.dim);
        // Everything that is not wall-clock-measured repeats exactly.
        let again = run_large_replay(&config).unwrap();
        for (a, b) in points.iter().zip(again.iter()) {
            assert_eq!(a.modeled_qps, b.modeled_qps);
            assert_eq!(a.hit_rate, b.hit_rate);
            assert_eq!(a.mean_candidates, b.mean_candidates);
            assert_eq!(a.catalogue_bytes, b.catalogue_bytes);
        }
    }

    #[test]
    fn smoke_study_covers_both_legs() {
        let config = LargeScaleConfig::smoke();
        let outcome = run_large_scale(&config).unwrap();
        let accuracy_rows = outcome.accuracy.variants.len();
        assert_eq!(accuracy_rows, 4);
        assert_eq!(outcome.replay.len(), 2);
        let json = outcome.study().to_json();
        for needle in [
            "\"axis\": \"accuracy\"",
            "\"axis\": \"replay\"",
            "served_qps",
            "latency_p99_us",
            "catalogue_bytes",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }
}
