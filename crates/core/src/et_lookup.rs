//! The embedding-table lookup study (Table III of the paper).
//!
//! For each paper workload this module models the per-input cost of the ET lookup +
//! pooling stage on the iMARS fabric and compares it with the calibrated GPU baseline.
//! The iMARS side is assembled from the Table II array figures of merit and the Table I
//! mapping, under two bracketing accountings:
//!
//! * **worst case** — every lookup of a table lands in the same CMA and the GPCiM
//!   additions serialize (`1 read + (L−1) adds`), the accounting Sec. IV-C1 describes;
//! * **spread** — the lookups balance across the table's allocated arrays, which pool in
//!   parallel and combine through the intra-mat / intra-bank adder trees.
//!
//! The paper's reported improvement factors (43.6×/45.2×/61.8× latency) fall between the
//! two brackets; both are reported side by side with the published numbers so the study
//! makes the modeling slack visible instead of hiding it. Tables occupy distinct banks
//! and pool in parallel; the serialized RSC bus transfers every pooled embedding to the
//! DNN buffers, one control overhead per table.

use imars_fabric::accumulator::GpcimAccumulator;
use imars_fabric::interconnect::{IbcNetwork, RscBus};
use imars_fabric::{Cost, FabricConfig};
use imars_gpu::model::EtLookupWorkload;
use imars_gpu::{GpuCost, GpuModel};

use imars_device::characterization::ArrayFom;

use crate::error::CoreError;
use crate::et_mapping::{EtMapping, EtSpec};
use crate::system::{FomComparison, StudyRow};
use crate::workloads::RecsysWorkload;

/// The iMARS-side cost model of the ET lookup stage.
#[derive(Debug, Clone, PartialEq)]
pub struct EtLookupModel {
    config: FabricConfig,
    fom: ArrayFom,
    accumulator: GpcimAccumulator,
}

/// Per-input cost of one ET lookup stage under the two bracketing accountings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtLookupCost {
    /// All lookups of a table serialize in one array (Sec. IV-C1 worst case).
    pub worst: Cost,
    /// Lookups balance across the table's arrays; adder trees combine the partials.
    pub spread: Cost,
}

/// One Table III row: a workload's ET-lookup cost on iMARS (both accountings) versus the
/// GPU baseline, with the paper-reported improvement factors alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct EtLookupComparison {
    /// Workload label.
    pub label: String,
    /// iMARS cost brackets.
    pub imars: EtLookupCost,
    /// GPU baseline cost.
    pub gpu: GpuCost,
    /// Paper-reported `(latency, energy)` improvement factors, if the paper tabulates
    /// this workload.
    pub paper_latency_speedup: Option<f64>,
    /// Paper-reported energy improvement factor.
    pub paper_energy_ratio: Option<f64>,
}

impl EtLookupComparison {
    /// GPU latency over iMARS worst-case latency.
    pub fn latency_speedup_worst(&self) -> f64 {
        self.gpu.latency_us / self.imars.worst.latency_us().max(f64::MIN_POSITIVE)
    }

    /// GPU latency over iMARS spread latency.
    pub fn latency_speedup_spread(&self) -> f64 {
        self.gpu.latency_us / self.imars.spread.latency_us().max(f64::MIN_POSITIVE)
    }

    /// GPU energy over iMARS worst-case energy.
    pub fn energy_ratio_worst(&self) -> f64 {
        self.gpu.energy_uj / self.imars.worst.energy_uj().max(f64::MIN_POSITIVE)
    }

    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        let mut row = FomComparison::new(&self.label, self.imars.worst, self.gpu)
            .study_row()
            .metric("imars_spread_latency_us", self.imars.spread.latency_us())
            .metric("imars_spread_energy_uj", self.imars.spread.energy_uj())
            .metric("latency_speedup_spread", self.latency_speedup_spread());
        if let Some(paper) = self.paper_latency_speedup {
            row = row.metric("paper_latency_speedup", paper);
        }
        if let Some(paper) = self.paper_energy_ratio {
            row = row.metric("paper_energy_ratio", paper);
        }
        row
    }
}

impl EtLookupModel {
    /// Build the model from a fabric configuration and array characterization.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Fabric`] for a structurally invalid configuration.
    pub fn new(config: FabricConfig, fom: ArrayFom) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Self {
            config,
            fom,
            accumulator: GpcimAccumulator::INT8,
        })
    }

    /// The paper's design point with the published Table II figures of merit.
    pub fn paper_reference() -> Self {
        Self::new(
            FabricConfig::paper_design_point(),
            ArrayFom::paper_reference(),
        )
        .expect("the paper design point is valid")
    }

    /// Use a different GPCiM accumulator width (scales every in-memory addition).
    pub fn with_accumulator(mut self, accumulator: GpcimAccumulator) -> Self {
        self.accumulator = accumulator;
        self
    }

    /// The fabric configuration of this model.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The array figures of merit of this model.
    pub fn fom(&self) -> &ArrayFom {
        &self.fom
    }

    /// The accumulator variant charged per in-memory addition.
    pub fn accumulator(&self) -> GpcimAccumulator {
        self.accumulator
    }

    fn add_cost(&self) -> Cost {
        Cost::from_fom(self.accumulator.add_fom(self.fom.cma.add))
    }

    /// Per-table pooling cost of `lookups` rows from a table of `rows` entries, under
    /// both accountings. Returns `(worst, spread)`.
    fn table_pool_cost(&self, rows: usize, lookups: usize) -> (Cost, Cost) {
        let read = Cost::from_fom(self.fom.cma.read);
        let add = self.add_cost();
        let lookups = lookups.max(1);

        // Worst case: everything serializes in one array.
        let worst = read.serial(add.repeat(lookups - 1));

        // Spread: lookups balance over the table's arrays.
        let arrays = rows.div_ceil(self.config.cma_rows).max(1);
        let touched = arrays.min(lookups);
        let max_load = lookups.div_ceil(touched);
        // Arrays pool in parallel: latency of the busiest array; every touched array
        // pays one read, the remaining lookups pay one in-memory addition each.
        let array_latency = read.serial(add.repeat(max_load - 1)).latency_ns;
        let array_energy =
            read.energy_pj * touched as f64 + add.energy_pj * (lookups - touched) as f64;
        let mut spread = Cost::new(array_energy, array_latency);

        // Partial sums combine through the adder trees when more than one array pooled.
        let mats = touched.div_ceil(self.config.cmas_per_mat);
        if touched > 1 {
            // One intra-mat accumulation per active mat, mats in parallel.
            let intra_mat = Cost::from_fom(self.fom.intra_mat_add);
            spread = spread.serial(Cost::new(
                intra_mat.energy_pj * mats as f64,
                intra_mat.latency_ns,
            ));
        }
        if mats > 1 {
            // Intra-bank rounds of the fan-in-wide adder tree, each fed by one IBC beat.
            let rounds = mats.div_ceil(self.config.intra_bank_fan_in);
            let ibc = IbcNetwork::new(self.config.interconnect);
            let beat = ibc.transfer_bytes(
                self.config.embedding_bits().div_ceil(8) * self.config.intra_bank_fan_in.min(mats),
            );
            let round = beat.cost.serial(Cost::from_fom(self.fom.intra_bank_add));
            spread = spread.serial(round.repeat(rounds));
        }
        (worst, spread)
    }

    /// Per-input cost of one stage's ET lookups for a set of `(rows, lookups)` tables.
    /// Tables occupy distinct banks (Table I: one sparse feature per bank) and pool in
    /// parallel; the serialized RSC bus then moves each pooled embedding to the DNN
    /// buffer, one control overhead per table.
    pub fn stage_cost_for_tables(&self, tables: &[(usize, usize)]) -> EtLookupCost {
        let rsc = RscBus::new(self.config.interconnect);
        let control = Cost::new(
            self.config.interconnect.control_energy_pj,
            self.config.interconnect.control_latency_ns,
        );
        let mut worst = Cost::ZERO;
        let mut spread = Cost::ZERO;
        for &(rows, lookups) in tables {
            let (table_worst, table_spread) = self.table_pool_cost(rows, lookups);
            worst = worst.parallel(table_worst);
            spread = spread.parallel(table_spread);
        }
        // The RSC bus serializes the per-table result transfers.
        let transfer = rsc
            .transfer_embedding(self.config.embedding_dim, self.config.element_bits)
            .cost
            .serial(control)
            .repeat(tables.len());
        EtLookupCost {
            worst: worst.serial(transfer),
            spread: spread.serial(transfer),
        }
    }

    /// Per-input ET-lookup cost of a paper workload.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Mapping`] if the workload does not fit the fabric (the
    /// mapping check the real hardware would fail too).
    pub fn stage_cost(&self, workload: &RecsysWorkload) -> Result<EtLookupCost, CoreError> {
        // Validate the workload actually maps onto the configured fabric first.
        let specs: Vec<EtSpec> = workload.et_specs();
        EtMapping::map(&specs, &self.config)?;
        let tables: Vec<(usize, usize)> = workload
            .tables
            .iter()
            .map(|t| (t.spec.rows, t.lookups_per_inference))
            .collect();
        Ok(self.stage_cost_for_tables(&tables))
    }
}

/// The three Table III comparisons (MovieLens filtering/ranking, Criteo ranking) under
/// the given model and GPU baseline.
///
/// # Errors
///
/// Propagates mapping failures (cannot happen at the paper design point).
pub fn table3_comparisons(
    model: &EtLookupModel,
    gpu: &GpuModel,
) -> Result<Vec<EtLookupComparison>, CoreError> {
    use imars_gpu::reference;
    let workloads = [
        (
            RecsysWorkload::movielens_filtering(),
            reference::SPEEDUP_ET_MOVIELENS_FILTERING,
        ),
        (
            RecsysWorkload::movielens_ranking(),
            reference::SPEEDUP_ET_MOVIELENS_RANKING,
        ),
        (
            RecsysWorkload::criteo_ranking(),
            reference::SPEEDUP_ET_CRITEO_RANKING,
        ),
    ];
    let mut comparisons = Vec::with_capacity(workloads.len());
    for (workload, paper) in workloads {
        let imars = model.stage_cost(&workload)?;
        let gpu_cost = gpu.et_lookup(&workload.gpu_lookup_workload());
        comparisons.push(EtLookupComparison {
            label: workload.kind.label().to_string(),
            imars,
            gpu: gpu_cost,
            paper_latency_speedup: Some(paper.latency),
            paper_energy_ratio: Some(paper.energy),
        });
    }
    Ok(comparisons)
}

/// One point of the ET-lookup design sweep: a single synthetic table of `rows` entries,
/// pooled `pooling_factor` rows per input at dimensionality `dim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtSweepPoint {
    /// Table size in rows.
    pub rows: usize,
    /// Rows pooled per input.
    pub pooling_factor: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// iMARS cost brackets.
    pub imars: EtLookupCost,
    /// GPU cost of the same access pattern.
    pub gpu: GpuCost,
}

impl EtSweepPoint {
    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        StudyRow::new()
            .config_num("table_rows", self.rows as f64)
            .config_num("pooling_factor", self.pooling_factor as f64)
            .config_num("dim", self.dim as f64)
            .metric("imars_worst_latency_us", self.imars.worst.latency_us())
            .metric("imars_spread_latency_us", self.imars.spread.latency_us())
            .metric("imars_worst_energy_uj", self.imars.worst.energy_uj())
            .metric("gpu_latency_us", self.gpu.latency_us)
            .metric("gpu_energy_uj", self.gpu.energy_uj)
            .metric(
                "latency_speedup_worst",
                self.gpu.latency_us / self.imars.worst.latency_us().max(f64::MIN_POSITIVE),
            )
    }
}

/// Sweep the ET-lookup cost over table size × pooling factor × dimensionality. The
/// embedding must fit one CMA row at the model's element width; oversized dims are
/// skipped.
pub fn et_lookup_sweep(
    model: &EtLookupModel,
    gpu: &GpuModel,
    table_rows: &[usize],
    pooling_factors: &[usize],
    dims: &[usize],
) -> Vec<EtSweepPoint> {
    let mut points = Vec::new();
    for &rows in table_rows {
        for &pooling_factor in pooling_factors {
            for &dim in dims {
                if dim * model.config.element_bits > model.config.cma_cols {
                    continue;
                }
                let mut dim_model = model.clone();
                dim_model.config.embedding_dim = dim;
                let imars = dim_model.stage_cost_for_tables(&[(rows, pooling_factor)]);
                let gpu_cost = gpu.et_lookup(&EtLookupWorkload {
                    tables: vec![imars_gpu::kernels::TableAccess {
                        rows,
                        lookups: pooling_factor,
                    }],
                    dim,
                });
                points.push(EtSweepPoint {
                    rows,
                    pooling_factor,
                    dim,
                    imars,
                    gpu: gpu_cost,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EtLookupModel {
        EtLookupModel::paper_reference()
    }

    #[test]
    fn worst_case_movielens_filtering_matches_manual_roll_up() {
        // History table dominates: 1 read + 49 serialized adds, then 6 RSC transfers.
        let cost = model()
            .stage_cost(&RecsysWorkload::movielens_filtering())
            .unwrap();
        let pool_ns = 0.3 + 49.0 * 8.1;
        let transfer_ns = 6.0 * (2.0 + 0.5); // one 256-bit beat + control per table
        assert!((cost.worst.latency_ns - (pool_ns + transfer_ns)).abs() < 1e-9);
        assert!(cost.spread.latency_ns < cost.worst.latency_ns);
    }

    #[test]
    fn paper_speedups_fall_between_the_two_accountings() {
        let comparisons = table3_comparisons(&model(), &GpuModel::gtx_1080()).unwrap();
        assert_eq!(comparisons.len(), 3);
        for comparison in &comparisons {
            let worst = comparison.latency_speedup_worst();
            let spread = comparison.latency_speedup_spread();
            assert!(worst <= spread, "{}", comparison.label);
            let paper = comparison.paper_latency_speedup.unwrap();
            // The published factor sits between the serialized and the fully spread
            // accounting for the pooled workloads, and both brackets show a big win.
            assert!(
                worst > 5.0,
                "{}: worst bracket {worst:.1}x",
                comparison.label
            );
            assert!(
                spread > paper * 0.5,
                "{}: spread {spread:.1}x vs paper {paper:.1}x",
                comparison.label
            );
        }
        // The pooled MovieLens workloads bracket the paper's reported factor.
        for comparison in &comparisons[..2] {
            let paper = comparison.paper_latency_speedup.unwrap();
            assert!(
                comparison.latency_speedup_worst() <= paper
                    && paper <= comparison.latency_speedup_spread(),
                "{}: paper {paper:.1}x outside [{:.1}, {:.1}]",
                comparison.label,
                comparison.latency_speedup_worst(),
                comparison.latency_speedup_spread()
            );
        }
    }

    #[test]
    fn imars_beats_gpu_on_energy_everywhere() {
        for comparison in table3_comparisons(&model(), &GpuModel::gtx_1080()).unwrap() {
            assert!(
                comparison.energy_ratio_worst() > 100.0,
                "{}",
                comparison.label
            );
        }
    }

    #[test]
    fn sweep_latency_grows_with_pooling_factor() {
        let gpu = GpuModel::gtx_1080();
        let points = et_lookup_sweep(&model(), &gpu, &[4096], &[1, 8, 64], &[32]);
        assert_eq!(points.len(), 3);
        assert!(points[0].imars.worst.latency_ns < points[1].imars.worst.latency_ns);
        assert!(points[1].imars.worst.latency_ns < points[2].imars.worst.latency_ns);
        assert!(points[0].gpu.latency_us < points[2].gpu.latency_us);
    }

    #[test]
    fn sweep_skips_oversized_dims() {
        let gpu = GpuModel::gtx_1080();
        let points = et_lookup_sweep(&model(), &gpu, &[1024], &[8], &[32, 64]);
        // 64 x 8 bits = 512 bits does not fit a 256-column row.
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].dim, 32);
    }

    #[test]
    fn wider_accumulator_raises_pooling_cost_only() {
        let narrow = model();
        let wide = model().with_accumulator(GpcimAccumulator::INT16);
        let workload = RecsysWorkload::movielens_filtering();
        let narrow_cost = narrow.stage_cost(&workload).unwrap();
        let wide_cost = wide.stage_cost(&workload).unwrap();
        assert!(wide_cost.worst.latency_ns > narrow_cost.worst.latency_ns);
        assert!(wide_cost.worst.energy_pj > narrow_cost.worst.energy_pj);
        // Criteo pools one row per table: no additions, so the width is free there.
        let criteo = RecsysWorkload::criteo_ranking();
        let narrow_criteo = narrow.stage_cost(&criteo).unwrap();
        let wide_criteo = wide.stage_cost(&criteo).unwrap();
        assert_eq!(narrow_criteo.worst, wide_criteo.worst);
    }

    #[test]
    fn study_rows_carry_the_comparison() {
        let comparison = &table3_comparisons(&model(), &GpuModel::gtx_1080()).unwrap()[0];
        let row = comparison.study_row();
        assert!(row.get_metric("latency_speedup").unwrap() > 1.0);
        assert!(row.get_metric("paper_latency_speedup").is_some());
    }
}
