//! iMARS: an in-memory-computing accelerator architecture for recommendation systems.
//!
//! This is the system-assembly crate of the reproduction of *"iMARS: An In-Memory-
//! Computing Architecture for Recommendation Systems"* (Li et al., DAC 2022). It glues
//! the lower-level crates together:
//!
//! * [`et_mapping`] — maps every embedding table of a RecSys model onto the CMA
//!   bank/mat/array hierarchy (Table I of the paper);
//! * [`workloads`] — the paper's two evaluation workloads (YouTubeDNN on MovieLens-1M,
//!   DLRM on Criteo Kaggle) expressed as embedding-lookup traffic;
//! * [`error`] — the unified error type wrapping the device/fabric/recsys layers.
//!
//! Higher-level evaluation drivers (ET-lookup cost comparison, NNS comparison,
//! end-to-end latency/energy, accuracy studies) are tracked as open roadmap items; the
//! benchmark crate (`imars-bench`) currently provides the measured-performance view.

pub mod error;
pub mod et_mapping;
pub mod workloads;

pub use error::CoreError;
pub use et_mapping::{EtMapping, EtSpec, MappingSummary};
pub use workloads::{RecsysWorkload, WorkloadKind};
