//! iMARS: an in-memory-computing accelerator architecture for recommendation systems.
//!
//! This is the core crate of the reproduction of *"iMARS: An In-Memory-Computing
//! Architecture for Recommendation Systems"* (Li et al., DAC 2022). It assembles the
//! lower-level crates into the paper's system and its evaluation:
//!
//! * [`et_mapping`] — maps every embedding table of a RecSys model onto the CMA
//!   bank/mat/array hierarchy (Table I of the paper);
//! * [`et_lookup`] — the embedding-table lookup cost model of Sec. IV-C1 (Table III),
//!   including the worst-case serialization inside one CMA and the RSC/IBC communication
//!   overhead, compared against the calibrated GPU baseline;
//! * [`nns_eval`] — the nearest-neighbour-search comparison of Sec. IV-C2 (TCAM threshold
//!   search vs. GPU cosine and GPU LSH);
//! * [`dnn_eval`] — the crossbar DNN-stack evaluation;
//! * [`end_to_end`] — the end-to-end latency/energy/throughput comparison of Sec. IV-C3;
//! * [`breakdown`] — the operation breakdown of Fig. 2;
//! * [`accuracy`] — the hit-rate study of Sec. IV-B (FP32 cosine vs. int8 cosine vs.
//!   int8 LSH-Hamming retrieval);
//! * [`pipeline`] — a functional iMARS pipeline running on the fabric simulator,
//!   demonstrating numerical equivalence between the in-memory operations and their
//!   software references;
//! * [`design_space`] — parameter sweeps around the paper's design point (adder-tree
//!   fan-in, CMAs per mat, LSH signature length, NNS threshold).
//!
//! # Quick start
//!
//! ```
//! use imars_core::system::ImarsSystem;
//!
//! // Build the paper's design point (B = 32, M = 4, C = 32, 256x256 CMAs).
//! let system = ImarsSystem::paper_design_point();
//! // Reproduce the MovieLens filtering-stage ET-lookup row of Table III.
//! let comparison = system.et_lookup_comparison();
//! let filtering = &comparison.rows[0];
//! assert!(filtering.latency_speedup > 10.0);
//! ```

pub mod accuracy;
pub mod breakdown;
pub mod design_space;
pub mod dnn_eval;
pub mod end_to_end;
pub mod error;
pub mod et_lookup;
pub mod et_mapping;
pub mod nns_eval;
pub mod pipeline;
pub mod system;
pub mod workloads;

pub use error::CoreError;
pub use et_mapping::{EtMapping, EtSpec, MappingSummary};
pub use system::ImarsSystem;
pub use workloads::{RecsysWorkload, WorkloadKind};
