//! iMARS: an in-memory-computing accelerator architecture for recommendation systems.
//!
//! This is the system-assembly crate of the reproduction of *"iMARS: An In-Memory-
//! Computing Architecture for Recommendation Systems"* (Li et al., DAC 2022). It glues
//! the lower-level crates together:
//!
//! * [`et_mapping`] — maps every embedding table of a RecSys model onto the CMA
//!   bank/mat/array hierarchy (Table I of the paper);
//! * [`workloads`] — the paper's two evaluation workloads (YouTubeDNN on MovieLens-1M,
//!   DLRM on Criteo Kaggle) expressed as embedding-lookup traffic;
//! * [`error`] — the unified error type wrapping the device/fabric/recsys layers;
//! * [`system`] — the generic study/sweep runner (cartesian grids, deterministic seeded
//!   JSON reports to `target/imars-bench/`);
//! * [`et_lookup`] — the Table III embedding-table-lookup study (iMARS cost model vs the
//!   calibrated GPU baseline, plus table-size/pooling/dim sweeps);
//! * [`nns_eval`] — the Sec. IV-C2 NNS comparison (TCAM fixed radius vs LSH vs exact
//!   cosine: recall, candidate ratio, energy);
//! * [`accuracy`] — the Sec. IV-B accuracy study (fp32 vs int8 vs LSH retrieval on
//!   synthetic MovieLens; fp32-vs-int8 DLRM CTR AUC on synthetic Criteo);
//! * [`pipeline`] — the Fig. 2 stage-level latency/energy breakdowns;
//! * [`end_to_end`] — full-system per-query FOMs and the serve-cluster replay path;
//! * [`cache_scaling`] — the MARM cache scaling-law study: hit-rate/qps-vs-capacity
//!   curves per replacement policy, skew, and cache placement, with a winning-policy
//!   frontier.

pub mod accuracy;
pub mod cache_scaling;
pub mod end_to_end;
pub mod error;
pub mod et_lookup;
pub mod et_mapping;
pub mod large_scale;
pub mod nns_eval;
pub mod pipeline;
pub mod system;
pub mod workloads;

pub use error::CoreError;
pub use et_lookup::EtLookupModel;
pub use et_mapping::{EtMapping, EtSpec, MappingSummary};
pub use system::{FomComparison, ParamValue, Study, StudyRow, SweepGrid};
pub use workloads::{RecsysWorkload, WorkloadKind};
