//! The nearest-neighbour-search comparison (Sec. IV-C2 of the paper).
//!
//! Three retrieval flavours compete over the same item-embedding catalogue:
//!
//! * **exact cosine top-k** — the FAISS-style software baseline (GPU-costed);
//! * **LSH + Hamming top-k** — the software version of the IMC-friendly search
//!   (GPU-costed);
//! * **TCAM fixed-radius** — what the CMA's TCAM mode executes in O(1) array time; the
//!   functional result comes from real [`CmaArray`] searches over the stored signatures,
//!   so the study measures genuine recall/candidate trade-offs, not a formula.
//!
//! For a sweep of radii the study reports recall@k against the exact-cosine ground
//! truth, the candidate fraction the fixed-radius search passes to ranking, and the
//! modeled iMARS search cost next to both GPU baselines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use imars_device::characterization::ArrayFom;
use imars_fabric::{CmaArray, Cost};
use imars_gpu::{GpuCost, GpuModel};
use imars_recsys::lsh::RandomHyperplaneLsh;
use imars_recsys::nns::{ExactIndex, Metric};
use imars_recsys::EmbeddingTable;

use crate::error::CoreError;
use crate::system::StudyRow;

/// Configuration of the NNS comparison study.
#[derive(Debug, Clone, PartialEq)]
pub struct NnsEvalConfig {
    /// Catalogue size (3,706 for MovieLens).
    pub items: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// LSH signature length in bits (256 in the paper).
    pub signature_bits: usize,
    /// Number of evaluation queries.
    pub queries: usize,
    /// Top-k depth of the recall metric.
    pub k: usize,
    /// Fixed radii to sweep for the TCAM search.
    pub radii: Vec<u32>,
    /// Standard deviation of the perturbation that turns an item vector into a query
    /// (larger = harder retrieval).
    pub noise: f32,
    /// RNG seed (item embeddings, hyperplanes, query perturbations all derive from it).
    pub seed: u64,
}

impl NnsEvalConfig {
    /// The MovieLens-scale configuration of the paper's NNS comparison.
    pub fn movielens_scale() -> Self {
        Self {
            items: 3706,
            dim: 32,
            signature_bits: 256,
            queries: 64,
            k: 10,
            radii: vec![80, 90, 100, 110, 120],
            noise: 0.25,
            seed: 2022,
        }
    }

    /// A small configuration for unit tests and smoke runs.
    pub fn small() -> Self {
        Self {
            items: 512,
            dim: 16,
            signature_bits: 128,
            queries: 16,
            k: 5,
            radii: vec![40, 48, 56],
            noise: 0.25,
            seed: 7,
        }
    }
}

/// One radius point of the fixed-radius sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NnsRadiusPoint {
    /// The Hamming radius.
    pub radius: u32,
    /// Mean recall@k of the TCAM matches against the exact-cosine top-k.
    pub recall_at_k: f64,
    /// Mean fraction of the catalogue passed as candidates.
    pub candidate_fraction: f64,
    /// Modeled per-query TCAM search cost (arrays search in parallel).
    pub tcam: Cost,
}

impl NnsRadiusPoint {
    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        StudyRow::new()
            .config_num("radius", self.radius as f64)
            .metric("recall_at_k", self.recall_at_k)
            .metric("candidate_fraction", self.candidate_fraction)
            .metric("tcam_latency_ns", self.tcam.latency_ns)
            .metric("tcam_energy_pj", self.tcam.energy_pj)
    }
}

/// The complete NNS comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct NnsStudy {
    /// The configuration the study ran with.
    pub config: NnsEvalConfig,
    /// Number of CMA arrays holding the signature catalogue.
    pub signature_arrays: usize,
    /// Per-radius sweep points, in radius order.
    pub points: Vec<NnsRadiusPoint>,
    /// Mean recall@k of the GPU-style LSH Hamming top-k against the exact top-k.
    pub lsh_topk_recall: f64,
    /// GPU cost of the exact cosine search.
    pub gpu_cosine: GpuCost,
    /// GPU cost of the LSH Hamming search.
    pub gpu_lsh: GpuCost,
}

impl NnsStudy {
    /// The modeled TCAM search cost (identical at every radius).
    pub fn tcam_cost(&self) -> Cost {
        self.points.first().map(|p| p.tcam).unwrap_or(Cost::ZERO)
    }

    /// GPU-LSH latency over TCAM latency (the paper's ~3.8×10⁴ claim).
    pub fn tcam_latency_speedup(&self) -> f64 {
        self.gpu_lsh.latency_us / self.tcam_cost().latency_us().max(f64::MIN_POSITIVE)
    }

    /// GPU-LSH energy over TCAM energy (the paper's ~2.8×10⁴ claim).
    pub fn tcam_energy_ratio(&self) -> f64 {
        self.gpu_lsh.energy_uj / self.tcam_cost().energy_uj().max(f64::MIN_POSITIVE)
    }

    /// The radius point with the best recall at a candidate fraction of at most
    /// `max_fraction` (how the serving radius is picked).
    pub fn best_radius_within(&self, max_fraction: f64) -> Option<&NnsRadiusPoint> {
        self.points
            .iter()
            .filter(|p| p.candidate_fraction <= max_fraction)
            .max_by(|a, b| {
                a.recall_at_k
                    .partial_cmp(&b.recall_at_k)
                    .expect("recalls are finite")
            })
    }
}

/// Run the NNS comparison.
///
/// # Errors
///
/// Propagates recsys/fabric errors for inconsistent configurations (zero dims, oversized
/// signatures).
pub fn run_nns_study(config: &NnsEvalConfig, fom: &ArrayFom) -> Result<NnsStudy, CoreError> {
    if config.items == 0 || config.queries == 0 || config.k == 0 || config.radii.is_empty() {
        return Err(CoreError::InvalidExperiment {
            reason: "NNS study needs items, queries, k and at least one radius".to_string(),
        });
    }
    let items = EmbeddingTable::new(config.items, config.dim, config.seed)?;
    let lsh = RandomHyperplaneLsh::new(config.dim, config.signature_bits, config.seed ^ 0x5f5f)?;
    let index = ExactIndex::new(
        config.dim,
        items.iter_rows().map(|row| row.to_vec()).collect(),
    )?;

    // Store every item's signature in TCAM rows: item i lives in array i / rows at row
    // i % rows, so array-local matches translate back to item ids.
    let signatures: Vec<Vec<u64>> = items
        .iter_rows()
        .map(|row| lsh.signature(row))
        .collect::<Result<_, _>>()?;
    let rows_per_array = fom.cma_geometry.rows;
    let array_count = config.items.div_ceil(rows_per_array);
    let mut arrays: Vec<CmaArray> = (0..array_count)
        .map(|_| CmaArray::new(rows_per_array, fom.cma_geometry.cols, *fom))
        .collect();
    for (item, signature) in signatures.iter().enumerate() {
        arrays[item / rows_per_array].write_row_bits(
            item % rows_per_array,
            signature,
            config.signature_bits.min(fom.cma_geometry.cols),
        )?;
    }

    // Queries: perturbed item vectors, ground truth = exact cosine top-k.
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e3779b9).wrapping_add(1));
    let queries: Vec<Vec<f32>> = (0..config.queries)
        .map(|q| {
            let base = items.row((q * 97) % config.items);
            base.iter()
                .map(|&v| v + rng.gen_range(-config.noise..config.noise))
                .collect()
        })
        .collect();
    let ground_truth: Vec<Vec<usize>> = queries
        .iter()
        .map(|query| index.top_k(query, config.k, Metric::Cosine))
        .collect::<Result<_, _>>()?;
    let query_signatures: Vec<Vec<u64>> = queries
        .iter()
        .map(|query| lsh.signature(query))
        .collect::<Result<_, _>>()?;

    // GPU-style LSH top-k recall.
    let mut lsh_recall_total = 0.0f64;
    for (signature, truth) in query_signatures.iter().zip(ground_truth.iter()) {
        let top = RandomHyperplaneLsh::top_k_by_hamming(signature, &signatures, config.k);
        let hits = truth.iter().filter(|item| top.contains(item)).count();
        lsh_recall_total += hits as f64 / config.k as f64;
    }
    let lsh_topk_recall = lsh_recall_total / config.queries as f64;

    // Fixed-radius sweep over the TCAM arrays.
    let search = Cost::from_fom(fom.cma.search);
    let tcam = Cost::new(search.energy_pj * array_count as f64, search.latency_ns);
    let mut points = Vec::with_capacity(config.radii.len());
    for &radius in &config.radii {
        let mut recall_total = 0.0f64;
        let mut fraction_total = 0.0f64;
        for (signature, truth) in query_signatures.iter().zip(ground_truth.iter()) {
            let mut matches: Vec<usize> = Vec::new();
            for (array_index, array) in arrays.iter().enumerate() {
                let outcome = array.search(signature, radius)?;
                matches.extend(
                    outcome
                        .value
                        .into_iter()
                        .map(|row| array_index * rows_per_array + row),
                );
            }
            let hits = truth.iter().filter(|item| matches.contains(item)).count();
            recall_total += hits as f64 / config.k as f64;
            fraction_total += matches.len() as f64 / config.items as f64;
        }
        points.push(NnsRadiusPoint {
            radius,
            recall_at_k: recall_total / config.queries as f64,
            candidate_fraction: fraction_total / config.queries as f64,
            tcam,
        });
    }

    let gpu = GpuModel::gtx_1080();
    Ok(NnsStudy {
        config: config.clone(),
        signature_arrays: array_count,
        points,
        lsh_topk_recall,
        gpu_cosine: gpu.nns_cosine(config.items, config.dim),
        gpu_lsh: gpu.nns_lsh(config.items, config.signature_bits),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> NnsStudy {
        run_nns_study(&NnsEvalConfig::small(), &ArrayFom::paper_reference()).unwrap()
    }

    #[test]
    fn recall_and_candidates_grow_with_radius() {
        let study = study();
        for pair in study.points.windows(2) {
            assert!(pair[0].recall_at_k <= pair[1].recall_at_k + 1e-12);
            assert!(pair[0].candidate_fraction <= pair[1].candidate_fraction + 1e-12);
        }
        // The widest radius must retrieve something.
        assert!(study.points.last().unwrap().recall_at_k > 0.0);
    }

    #[test]
    fn tcam_searches_in_constant_array_time() {
        let study = study();
        let fom = ArrayFom::paper_reference();
        assert_eq!(study.signature_arrays, 2); // 512 items / 256 rows
        let cost = study.tcam_cost();
        assert!((cost.latency_ns - fom.cma.search.latency_ns).abs() < 1e-12);
        assert!((cost.energy_pj - 2.0 * fom.cma.search.energy_pj).abs() < 1e-12);
    }

    #[test]
    fn tcam_speedup_over_gpu_lsh_is_orders_of_magnitude() {
        let study = study();
        assert!(study.tcam_latency_speedup() > 1e3);
        assert!(study.tcam_energy_ratio() > 1e3);
        assert!(study.gpu_cosine.latency_us > study.gpu_lsh.latency_us);
    }

    #[test]
    fn study_is_deterministic_for_a_seed() {
        let a = study();
        let b = study();
        assert_eq!(a, b);
        let mut other = NnsEvalConfig::small();
        other.seed ^= 1;
        let c = run_nns_study(&other, &ArrayFom::paper_reference()).unwrap();
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn tcam_matches_equal_software_fixed_radius_reference() {
        // Rebuild the study's catalogue and cross-check one radius point's candidate
        // fraction against the software within_radius reference.
        let config = NnsEvalConfig::small();
        let items = EmbeddingTable::new(config.items, config.dim, config.seed).unwrap();
        let lsh = RandomHyperplaneLsh::new(config.dim, config.signature_bits, config.seed ^ 0x5f5f)
            .unwrap();
        let signatures: Vec<Vec<u64>> = items
            .iter_rows()
            .map(|row| lsh.signature(row).unwrap())
            .collect();
        let study = study();
        let radius = config.radii[0];
        // Average candidate fraction over the same queries, via the software reference.
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e3779b9).wrapping_add(1));
        let mut fraction_total = 0.0f64;
        for q in 0..config.queries {
            let base = items.row((q * 97) % config.items);
            let query: Vec<f32> = base
                .iter()
                .map(|&v| v + rng.gen_range(-config.noise..config.noise))
                .collect();
            let signature = lsh.signature(&query).unwrap();
            let matches = RandomHyperplaneLsh::within_radius(&signature, &signatures, radius);
            fraction_total += matches.len() as f64 / config.items as f64;
        }
        let reference = fraction_total / config.queries as f64;
        assert!((study.points[0].candidate_fraction - reference).abs() < 1e-12);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let fom = ArrayFom::paper_reference();
        let mut config = NnsEvalConfig::small();
        config.radii.clear();
        assert!(run_nns_study(&config, &fom).is_err());
        let mut config = NnsEvalConfig::small();
        config.queries = 0;
        assert!(run_nns_study(&config, &fom).is_err());
    }

    #[test]
    fn best_radius_respects_candidate_budget() {
        let study = study();
        if let Some(best) = study.best_radius_within(0.5) {
            assert!(best.candidate_fraction <= 0.5);
        }
        assert!(study.best_radius_within(-1.0).is_none());
    }
}
