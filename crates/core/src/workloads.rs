//! The two evaluated RecSys workloads, described once and shared by every experiment.
//!
//! A [`RecsysWorkload`] bundles everything an experiment needs to know about one paper
//! workload: which embedding tables exist (and how big they are), how many rows a single
//! inference pools from each, the DNN stack shapes, the item-catalogue size and the
//! serving shape (candidates per query, top-k).

use serde::{Deserialize, Serialize};

use imars_gpu::model::EtLookupWorkload;
use imars_recsys::dlrm::criteo_cardinalities;

use crate::et_mapping::EtSpec;

/// Which paper workload a description refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// YouTubeDNN filtering stage on MovieLens-1M.
    MovieLensFiltering,
    /// YouTubeDNN ranking stage on MovieLens-1M.
    MovieLensRanking,
    /// DLRM ranking stage on the Criteo Kaggle dataset.
    CriteoRanking,
}

impl WorkloadKind {
    /// Human-readable name matching the paper's table headers.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::MovieLensFiltering => "MovieLens / Filtering",
            WorkloadKind::MovieLensRanking => "MovieLens / Ranking",
            WorkloadKind::CriteoRanking => "Criteo Kaggle / Ranking",
        }
    }
}

/// One embedding table of a workload together with its per-inference pooling factor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableUsage {
    /// Static description of the table (name, rows, LSH flag).
    pub spec: EtSpec,
    /// Number of rows pooled from this table for one inference input.
    pub lookups_per_inference: usize,
}

/// Full description of one evaluated workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecsysWorkload {
    /// Which workload this is.
    pub kind: WorkloadKind,
    /// The embedding tables the stage uses, in mapping order.
    pub tables: Vec<TableUsage>,
    /// DNN stack layer shapes `(inputs, outputs)`.
    pub dnn_layers: Vec<(usize, usize)>,
    /// Number of items in the catalogue searched by the NNS (0 when the stage has none).
    pub catalogue_items: usize,
    /// LSH signature length in bits used by the IMC-friendly NNS.
    pub lsh_signature_bits: usize,
    /// Number of candidate items the filtering stage hands to ranking.
    pub candidates_per_query: usize,
    /// Number of items finally returned to the user.
    pub top_k: usize,
}

impl RecsysWorkload {
    /// The representative watch-history length used for MovieLens per-query costing. The
    /// MovieLens-1M guarantee is ≥20 ratings per user with a long-tailed mean near 160;
    /// the paper's per-input measurements are consistent with a few tens of pooled rows,
    /// so the model uses 50 (and the value is a plain field, swept by the design-space
    /// benches).
    pub const MOVIELENS_HISTORY_LOOKUPS: usize = 50;
    /// Representative number of genre rows pooled per MovieLens inference.
    pub const MOVIELENS_GENRE_LOOKUPS: usize = 5;

    /// The MovieLens filtering-stage workload (Table I, first column).
    pub fn movielens_filtering() -> Self {
        Self {
            kind: WorkloadKind::MovieLensFiltering,
            tables: vec![
                TableUsage {
                    spec: EtSpec::new("uiet.history", 3706),
                    lookups_per_inference: Self::MOVIELENS_HISTORY_LOOKUPS,
                },
                TableUsage {
                    spec: EtSpec::new("uiet.genre", 18),
                    lookups_per_inference: Self::MOVIELENS_GENRE_LOOKUPS,
                },
                TableUsage {
                    spec: EtSpec::new("uiet.age", 7),
                    lookups_per_inference: 1,
                },
                TableUsage {
                    spec: EtSpec::new("uiet.gender", 2),
                    lookups_per_inference: 1,
                },
                TableUsage {
                    spec: EtSpec::new("uiet.occupation", 21),
                    lookups_per_inference: 1,
                },
                TableUsage {
                    spec: EtSpec::with_lsh("itet.movie", 3706),
                    lookups_per_inference: 1,
                },
            ],
            dnn_layers: vec![(160, 128), (128, 64), (64, 32)],
            catalogue_items: 3706,
            lsh_signature_bits: 256,
            candidates_per_query: 100,
            top_k: 10,
        }
    }

    /// The MovieLens ranking-stage workload (Table I, second column).
    pub fn movielens_ranking() -> Self {
        let mut workload = Self::movielens_filtering();
        workload.kind = WorkloadKind::MovieLensRanking;
        // The ranking stage adds the ranking-only context UIET (6 UIETs total, 5 shared).
        workload.tables.insert(
            5,
            TableUsage {
                spec: EtSpec::new("uiet.ranking_context", 8),
                lookups_per_inference: 1,
            },
        );
        workload.dnn_layers = vec![(224, 128), (128, 1)];
        workload
    }

    /// The Criteo Kaggle ranking-stage workload (Table I, third column): 26 categorical
    /// features, one lookup each, DLRM bottom + top MLP.
    pub fn criteo_ranking() -> Self {
        let tables = criteo_cardinalities()
            .into_iter()
            .enumerate()
            .map(|(index, rows)| TableUsage {
                spec: EtSpec::new(format!("criteo.c{index:02}"), rows),
                lookups_per_inference: 1,
            })
            .collect();
        Self {
            kind: WorkloadKind::CriteoRanking,
            tables,
            dnn_layers: vec![
                // DLRM bottom MLP (13 dense features -> 256-128-32).
                (13, 256),
                (256, 128),
                (128, 32),
                // DLRM top MLP (dense embedding + 351 interactions -> 256-64-1).
                (383, 256),
                (256, 64),
                (64, 1),
            ],
            catalogue_items: 0,
            lsh_signature_bits: 256,
            candidates_per_query: 100,
            top_k: 10,
        }
    }

    /// Number of embedding tables (sparse features) of the workload.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of embedding rows pooled per inference input.
    pub fn total_lookups(&self) -> usize {
        self.tables.iter().map(|t| t.lookups_per_inference).sum()
    }

    /// Embedding-table specifications in mapping order (the input of the Table I mapping).
    pub fn et_specs(&self) -> Vec<EtSpec> {
        self.tables.iter().map(|t| t.spec.clone()).collect()
    }

    /// The equivalent GPU-side lookup workload, used by the baseline model.
    pub fn gpu_lookup_workload(&self) -> EtLookupWorkload {
        EtLookupWorkload {
            tables: self
                .tables
                .iter()
                .map(|t| imars_gpu::kernels::TableAccess {
                    rows: t.spec.rows,
                    lookups: t.lookups_per_inference,
                })
                .collect(),
            dim: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movielens_filtering_matches_table_i() {
        let workload = RecsysWorkload::movielens_filtering();
        // 5 UIETs + 1 ItET.
        assert_eq!(workload.table_count(), 6);
        assert_eq!(
            workload
                .tables
                .iter()
                .filter(|t| t.spec.stores_lsh_signature)
                .count(),
            1
        );
        assert_eq!(workload.dnn_layers.last(), Some(&(64, 32)));
        assert_eq!(workload.catalogue_items, 3706);
        assert_eq!(workload.kind.label(), "MovieLens / Filtering");
    }

    #[test]
    fn movielens_ranking_adds_one_uiet_and_scores_ctr() {
        let filtering = RecsysWorkload::movielens_filtering();
        let ranking = RecsysWorkload::movielens_ranking();
        assert_eq!(ranking.table_count(), filtering.table_count() + 1);
        assert_eq!(ranking.dnn_layers.last(), Some(&(128, 1)));
        assert!(ranking.total_lookups() > filtering.total_lookups());
    }

    #[test]
    fn criteo_ranking_has_26_single_lookup_tables() {
        let workload = RecsysWorkload::criteo_ranking();
        assert_eq!(workload.table_count(), 26);
        assert_eq!(workload.total_lookups(), 26);
        assert!(workload.tables.iter().all(|t| t.lookups_per_inference == 1));
        assert_eq!(
            workload.tables.iter().map(|t| t.spec.rows).max(),
            Some(30_000)
        );
        assert_eq!(workload.dnn_layers.len(), 6);
        assert_eq!(workload.catalogue_items, 0);
    }

    #[test]
    fn gpu_workload_mirrors_tables() {
        let workload = RecsysWorkload::movielens_ranking();
        let gpu = workload.gpu_lookup_workload();
        assert_eq!(gpu.tables.len(), workload.table_count());
        assert_eq!(gpu.dim, 32);
        assert_eq!(
            gpu.tables.iter().map(|t| t.lookups).sum::<usize>(),
            workload.total_lookups()
        );
    }

    #[test]
    fn et_specs_preserve_order_and_names() {
        let specs = RecsysWorkload::movielens_filtering().et_specs();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].name, "uiet.history");
        assert_eq!(specs[5].name, "itet.movie");
        assert!(specs[5].stores_lsh_signature);
    }
}
