//! Stage-level latency/energy breakdown of the two-stage pipeline (Fig. 2 of the paper).
//!
//! Fig. 2 decomposes the GPU run time of the filtering stage into {ET lookup, DNN stack,
//! NNS} and of the ranking stage into {ET lookup, DNN stack, TopK}. This module builds
//! the same decomposition for the iMARS fabric — ET lookups from the
//! [`crate::et_lookup`] model, the DNN stack on the crossbar banks, the NNS on the TCAM
//! arrays — so the two stacked bars can be compared operation by operation, including
//! the paper's claim that the crossbar DNN stack improves 2.69× over the GPU.

use imars_device::characterization::ArrayFom;
use imars_fabric::interconnect::RscBus;
use imars_fabric::{Cost, CrossbarBank};
use imars_gpu::model::StageBreakdown;
use imars_gpu::GpuModel;

use crate::error::CoreError;
use crate::et_lookup::EtLookupModel;
use crate::system::StudyRow;
use crate::workloads::RecsysWorkload;

/// One stage's per-operation iMARS cost decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCost {
    /// `(operation name, cost)` pairs, in pipeline order.
    pub operations: Vec<(String, Cost)>,
}

impl StageCost {
    /// Total stage cost (operations run back to back).
    pub fn total(&self) -> Cost {
        self.operations
            .iter()
            .fold(Cost::ZERO, |acc, (_, cost)| acc.serial(*cost))
    }

    /// `(operation name, fraction of the stage latency)` pairs.
    pub fn latency_fractions(&self) -> Vec<(String, f64)> {
        let total = self.total().latency_ns.max(f64::MIN_POSITIVE);
        self.operations
            .iter()
            .map(|(name, cost)| (name.clone(), cost.latency_ns / total))
            .collect()
    }

    /// The cost of one named operation (zero when absent).
    pub fn operation(&self, name: &str) -> Cost {
        self.operations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(Cost::ZERO)
    }
}

/// Cost of a DNN stack on the crossbar banks: each layer is tiled over 256×128 crossbar
/// arrays which fire in parallel; layers run back to back, and a batch streams through
/// the layer pipeline (`batch + layers − 1` crossbar rounds end to end).
pub fn crossbar_dnn_cost(fom: &ArrayFom, layer_shapes: &[(usize, usize)], batch: usize) -> Cost {
    let bank = CrossbarBank::new(*fom);
    let matmul = Cost::from_fom(fom.crossbar_matmul);
    let batch = batch.max(1);
    let rounds = batch + layer_shapes.len().saturating_sub(1);
    let tiles_per_pass: usize = layer_shapes
        .iter()
        .map(|&(inputs, outputs)| bank.tiles_for_layer(inputs, outputs))
        .sum();
    Cost::new(
        matmul.energy_pj * tiles_per_pass as f64 * batch as f64,
        matmul.latency_ns * rounds as f64,
    )
}

/// Cost of the TCAM nearest-neighbour search over a catalogue of `items` signatures:
/// every signature array searches in parallel (one search figure of merit of latency,
/// one of energy per array).
pub fn tcam_nns_cost(fom: &ArrayFom, items: usize) -> Cost {
    let arrays = items.div_ceil(fom.cma_geometry.rows).max(1);
    let search = Cost::from_fom(fom.cma.search);
    Cost::new(search.energy_pj * arrays as f64, search.latency_ns)
}

/// iMARS breakdown of the filtering stage for one query: ET lookup (spread accounting),
/// crossbar DNN stack, TCAM NNS.
///
/// # Errors
///
/// Propagates mapping failures from the ET model.
pub fn imars_filtering_breakdown(
    model: &EtLookupModel,
    workload: &RecsysWorkload,
) -> Result<StageCost, CoreError> {
    let et = model.stage_cost(workload)?;
    let dnn = crossbar_dnn_cost(model.fom(), &workload.dnn_layers, 1);
    let nns = tcam_nns_cost(model.fom(), workload.catalogue_items.max(1));
    Ok(StageCost {
        operations: vec![
            ("ET Lookup".to_string(), et.spread),
            ("DNN Stack".to_string(), dnn),
            ("NNS".to_string(), nns),
        ],
    })
}

/// iMARS breakdown of the ranking stage for one query scoring `candidates` items: the
/// user-side ET lookup happens once, the per-candidate item lookups serialize on the
/// ItET arrays, the DNN stack streams the candidate batch through the crossbar pipeline,
/// and the final top-k is a near-memory scan charged to the controller.
///
/// # Errors
///
/// Propagates mapping failures from the ET model.
pub fn imars_ranking_breakdown(
    model: &EtLookupModel,
    workload: &RecsysWorkload,
    candidates: usize,
) -> Result<StageCost, CoreError> {
    let candidates = candidates.max(1);
    let user_et = model.stage_cost(workload)?;
    // Item lookups: one CMA read per candidate, serialized per array over the ItET's
    // arrays, plus one RSC transfer per candidate embedding.
    let fom = model.fom();
    let read = Cost::from_fom(fom.cma.read);
    let arrays = workload
        .catalogue_items
        .max(1)
        .div_ceil(model.config().cma_rows);
    let reads_per_array = candidates.div_ceil(arrays.max(1));
    let rsc = RscBus::new(model.config().interconnect);
    let transfer = rsc
        .transfer_embedding(model.config().embedding_dim, model.config().element_bits)
        .cost;
    let item_et = Cost::new(
        read.energy_pj * candidates as f64 + transfer.energy_pj * candidates as f64,
        read.latency_ns * reads_per_array as f64 + transfer.latency_ns * candidates as f64,
    );
    let et = user_et.spread.serial(item_et);
    let dnn = crossbar_dnn_cost(fom, &workload.dnn_layers, candidates);
    // Top-k: a near-memory comparator scan over the candidate scores.
    let control = Cost::new(
        model.config().interconnect.control_energy_pj,
        model.config().interconnect.control_latency_ns,
    );
    let topk = control.repeat(candidates);
    Ok(StageCost {
        operations: vec![
            ("ET Lookup".to_string(), et),
            ("DNN Stack".to_string(), dnn),
            ("TopK".to_string(), topk),
        ],
    })
}

/// A Fig. 2-style comparison of one stage: the iMARS and GPU breakdowns side by side
/// with the paper-reported GPU fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownComparison {
    /// Stage label (`filtering` / `ranking`).
    pub stage: String,
    /// iMARS per-operation costs.
    pub imars: StageCost,
    /// GPU per-operation breakdown (latencies in µs).
    pub gpu: StageBreakdown,
    /// Paper-reported GPU fractions for this stage.
    pub paper_gpu_fractions: Vec<(String, f64)>,
}

impl BreakdownComparison {
    /// Study rows: one per operation, with both sides' latencies and fractions.
    pub fn study_rows(&self) -> Vec<StudyRow> {
        let imars_fractions = self.imars.latency_fractions();
        let gpu_fractions = self.gpu.fractions();
        let mut rows = Vec::new();
        for (index, (name, imars_cost)) in self.imars.operations.iter().enumerate() {
            let gpu_us = self
                .gpu
                .operations
                .get(index)
                .map(|(_, t)| *t)
                .unwrap_or(0.0);
            let paper = self
                .paper_gpu_fractions
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            let mut row = StudyRow::new()
                .config_text("stage", &self.stage)
                .config_text("operation", name)
                .metric("imars_latency_us", imars_cost.latency_us())
                .metric("imars_energy_uj", imars_cost.energy_uj())
                .metric("imars_fraction", imars_fractions[index].1)
                .metric("gpu_latency_us", gpu_us)
                .metric(
                    "gpu_fraction",
                    gpu_fractions.get(index).map(|(_, f)| *f).unwrap_or(0.0),
                );
            if paper > 0.0 {
                row = row.metric("paper_gpu_fraction", paper);
            }
            rows.push(row);
        }
        rows
    }

    /// GPU-over-iMARS latency factor of one operation.
    pub fn operation_speedup(&self, name: &str) -> f64 {
        let imars = self.imars.operation(name).latency_us();
        let gpu = self
            .gpu
            .operations
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(0.0);
        gpu / imars.max(f64::MIN_POSITIVE)
    }
}

/// Build both Fig. 2 comparisons (MovieLens filtering and ranking) for the given model
/// and GPU baseline.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn fig2_comparisons(
    model: &EtLookupModel,
    gpu: &GpuModel,
    candidates: usize,
) -> Result<Vec<BreakdownComparison>, CoreError> {
    use imars_gpu::reference;
    let filtering = RecsysWorkload::movielens_filtering();
    let ranking = RecsysWorkload::movielens_ranking();
    let gpu_filtering = gpu.filtering_breakdown(
        &filtering.gpu_lookup_workload(),
        &filtering.dnn_layers,
        filtering.catalogue_items,
        filtering.lsh_signature_bits,
    );
    let gpu_ranking = gpu.ranking_breakdown(
        &ranking.gpu_lookup_workload(),
        &ranking.dnn_layers,
        candidates,
    );
    Ok(vec![
        BreakdownComparison {
            stage: "filtering".to_string(),
            imars: imars_filtering_breakdown(model, &filtering)?,
            gpu: gpu_filtering,
            paper_gpu_fractions: reference::FILTERING_BREAKDOWN
                .iter()
                .map(|(n, f)| (n.to_string(), *f))
                .collect(),
        },
        BreakdownComparison {
            stage: "ranking".to_string(),
            imars: imars_ranking_breakdown(model, &ranking, candidates)?,
            gpu: gpu_ranking,
            paper_gpu_fractions: reference::RANKING_BREAKDOWN
                .iter()
                .map(|(n, f)| (n.to_string(), *f))
                .collect(),
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EtLookupModel {
        EtLookupModel::paper_reference()
    }

    #[test]
    fn crossbar_stack_pipelines_batches() {
        let fom = ArrayFom::paper_reference();
        let shapes = vec![(160, 128), (128, 64), (64, 32)];
        let single = crossbar_dnn_cost(&fom, &shapes, 1);
        assert!((single.latency_ns - 3.0 * 225.0).abs() < 1e-9);
        let batched = crossbar_dnn_cost(&fom, &shapes, 100);
        // Pipelining: 100 samples cost 102 rounds, not 300.
        assert!((batched.latency_ns - 102.0 * 225.0).abs() < 1e-9);
        assert!(batched.energy_pj > single.energy_pj * 90.0);
    }

    #[test]
    fn tcam_nns_latency_is_occupancy_independent() {
        let fom = ArrayFom::paper_reference();
        let small = tcam_nns_cost(&fom, 256);
        let large = tcam_nns_cost(&fom, 30_000);
        assert_eq!(small.latency_ns, large.latency_ns);
        assert!(large.energy_pj > small.energy_pj);
    }

    #[test]
    fn filtering_breakdown_has_three_operations_and_sums() {
        let breakdown =
            imars_filtering_breakdown(&model(), &RecsysWorkload::movielens_filtering()).unwrap();
        assert_eq!(breakdown.operations.len(), 3);
        let fractions = breakdown.latency_fractions();
        let total: f64 = fractions.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // On iMARS the crossbar DNN dominates the stage (ET pooling and NNS are
        // near-free in-memory), inverting the GPU's Fig. 2(a) mix.
        assert!(
            breakdown.operation("DNN Stack").latency_ns > breakdown.operation("NNS").latency_ns
        );
    }

    #[test]
    fn fig2_comparisons_report_per_operation_speedups() {
        let comparisons = fig2_comparisons(&model(), &GpuModel::gtx_1080(), 100).unwrap();
        assert_eq!(comparisons.len(), 2);
        for comparison in &comparisons {
            assert_eq!(comparison.imars.operations.len(), 3);
            assert_eq!(comparison.study_rows().len(), 3);
            // Every operation is faster on iMARS.
            for (name, _) in &comparison.imars.operations {
                assert!(
                    comparison.operation_speedup(name) > 1.0,
                    "{}/{name}",
                    comparison.stage
                );
            }
        }
        // The NNS shows the largest single-operation win (the TCAM argument).
        let filtering = &comparisons[0];
        assert!(filtering.operation_speedup("NNS") > filtering.operation_speedup("DNN Stack"));
    }

    #[test]
    fn ranking_breakdown_scales_with_candidates() {
        let workload = RecsysWorkload::movielens_ranking();
        let few = imars_ranking_breakdown(&model(), &workload, 10).unwrap();
        let many = imars_ranking_breakdown(&model(), &workload, 100).unwrap();
        assert!(many.total().latency_ns > few.total().latency_ns);
        assert!(many.total().energy_pj > few.total().energy_pj);
    }
}
