//! Error type for the core crate.

use std::fmt;

use imars_device::DeviceError;
use imars_fabric::FabricError;
use imars_recsys::RecsysError;

/// Errors surfaced by the iMARS system model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the device-level models.
    Device(DeviceError),
    /// An error bubbled up from the fabric simulator.
    Fabric(FabricError),
    /// An error bubbled up from the recommendation-system algorithms.
    Recsys(RecsysError),
    /// A capacity or mapping constraint was violated.
    Mapping {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An experiment was configured inconsistently.
    InvalidExperiment {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Device(e) => write!(f, "device model error: {e}"),
            CoreError::Fabric(e) => write!(f, "fabric model error: {e}"),
            CoreError::Recsys(e) => write!(f, "recsys model error: {e}"),
            CoreError::Mapping { reason } => write!(f, "mapping error: {reason}"),
            CoreError::InvalidExperiment { reason } => write!(f, "invalid experiment: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Device(e) => Some(e),
            CoreError::Fabric(e) => Some(e),
            CoreError::Recsys(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for CoreError {
    fn from(e: DeviceError) -> Self {
        CoreError::Device(e)
    }
}

impl From<FabricError> for CoreError {
    fn from(e: FabricError) -> Self {
        CoreError::Fabric(e)
    }
}

impl From<RecsysError> for CoreError {
    fn from(e: RecsysError) -> Self {
        CoreError::Recsys(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let device: CoreError = DeviceError::InvalidParameter {
            name: "vdd",
            reason: "negative".to_string(),
        }
        .into();
        assert!(device.to_string().contains("device model error"));

        let fabric: CoreError = FabricError::RowOutOfRange { row: 3, rows: 2 }.into();
        assert!(fabric.to_string().contains("fabric model error"));

        let recsys: CoreError = RecsysError::InvalidConfig {
            reason: "zero".to_string(),
        }
        .into();
        assert!(recsys.to_string().contains("recsys model error"));

        let mapping = CoreError::Mapping {
            reason: "table too large".to_string(),
        };
        assert!(mapping.to_string().contains("table too large"));

        let experiment = CoreError::InvalidExperiment {
            reason: "zero users".to_string(),
        };
        assert!(experiment.to_string().contains("zero users"));
    }

    #[test]
    fn source_points_at_inner_error() {
        use std::error::Error;
        let err: CoreError = FabricError::EmptySelection { operation: "pool" }.into();
        assert!(err.source().is_some());
        let err = CoreError::Mapping { reason: "x".into() };
        assert!(err.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
