//! End-to-end figures of merit (Sec. IV-C3 of the paper) plus the serving-cluster path.
//!
//! Two views of "the whole system":
//!
//! * **modeled per-query FOMs** — filtering + ranking assembled from the stage
//!   breakdowns of [`crate::pipeline`], against the GPU baseline's end-to-end cost and
//!   the paper's reported 1311 (GPU) / 22,025 (iMARS) queries-per-second numbers;
//! * **the serve cluster path** — a real (simulated-time) Zipf replay through the
//!   `imars-serve` engine, single-node or sharded, reporting measured cache hit rate,
//!   modeled per-query energy and tail latency, and cross-shard interconnect traffic.

use imars_fabric::Cost;
use imars_gpu::{GpuCost, GpuModel};
use imars_recsys::dlrm::{Dlrm, DlrmConfig};
use imars_recsys::EmbeddingTable;
use imars_serve::{
    CachePlacement, CachePolicy, ClusterConfig, Placement, ReplayConfig, ReplayWorkload,
    ServeConfig, ServeEngine,
};

use crate::error::CoreError;
use crate::et_lookup::EtLookupModel;
use crate::pipeline::{imars_filtering_breakdown, imars_ranking_breakdown};
use crate::system::{FomComparison, StudyRow};
use crate::workloads::RecsysWorkload;

/// One end-to-end comparison row: modeled iMARS query cost vs the GPU baseline, with the
/// paper's reported improvement factors alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct EndToEndComparison {
    /// Workload label.
    pub label: String,
    /// Modeled per-query iMARS cost (filtering + ranking + top-k).
    pub imars: Cost,
    /// Modeled per-query GPU cost.
    pub gpu: GpuCost,
    /// Paper-reported latency improvement factor.
    pub paper_latency_speedup: f64,
    /// Paper-reported energy improvement factor.
    pub paper_energy_ratio: f64,
}

impl EndToEndComparison {
    /// iMARS queries per second implied by the modeled per-query latency.
    pub fn imars_qps(&self) -> f64 {
        1.0e9 / self.imars.latency_ns.max(f64::MIN_POSITIVE)
    }

    /// GPU queries per second implied by the modeled per-query latency.
    pub fn gpu_qps(&self) -> f64 {
        GpuModel::queries_per_second(self.gpu)
    }

    /// Modeled latency improvement factor.
    pub fn latency_speedup(&self) -> f64 {
        self.gpu.latency_us / self.imars.latency_us().max(f64::MIN_POSITIVE)
    }

    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        FomComparison::new(&self.label, self.imars, self.gpu)
            .study_row()
            .metric("imars_qps", self.imars_qps())
            .metric("gpu_qps", self.gpu_qps())
            .metric("paper_latency_speedup", self.paper_latency_speedup)
            .metric("paper_energy_ratio", self.paper_energy_ratio)
    }
}

/// The MovieLens end-to-end comparison: filtering + ranking of `candidates` items.
///
/// # Errors
///
/// Propagates mapping failures.
pub fn movielens_end_to_end(
    model: &EtLookupModel,
    gpu: &GpuModel,
    candidates: usize,
) -> Result<EndToEndComparison, CoreError> {
    use imars_gpu::reference;
    let filtering = RecsysWorkload::movielens_filtering();
    let ranking = RecsysWorkload::movielens_ranking();
    let imars = imars_filtering_breakdown(model, &filtering)?
        .total()
        .serial(imars_ranking_breakdown(model, &ranking, candidates)?.total());
    let gpu_cost = gpu.end_to_end_movielens(
        &filtering.gpu_lookup_workload(),
        &ranking.gpu_lookup_workload(),
        &filtering.dnn_layers,
        &ranking.dnn_layers,
        filtering.catalogue_items,
        filtering.lsh_signature_bits,
        candidates,
    );
    Ok(EndToEndComparison {
        label: "MovieLens end-to-end".to_string(),
        imars,
        gpu: gpu_cost,
        paper_latency_speedup: reference::SPEEDUP_END_TO_END_MOVIELENS.latency,
        paper_energy_ratio: reference::SPEEDUP_END_TO_END_MOVIELENS.energy,
    })
}

/// The Criteo end-to-end comparison: ranking `candidates` items (no filtering stage).
///
/// # Errors
///
/// Propagates mapping failures.
pub fn criteo_end_to_end(
    model: &EtLookupModel,
    gpu: &GpuModel,
    candidates: usize,
) -> Result<EndToEndComparison, CoreError> {
    use imars_gpu::reference;
    let ranking = RecsysWorkload::criteo_ranking();
    // Criteo has no item catalogue/NNS; the ranking breakdown degenerates to per-
    // candidate ET lookups + the DLRM stack.
    let imars = imars_ranking_breakdown(model, &ranking, candidates)?.total();
    // The bottom MLP ends where consecutive layers stop chaining (its 32-wide output
    // feeds the 383-wide interaction input of the top MLP).
    let split = ranking
        .dnn_layers
        .windows(2)
        .position(|pair| pair[0].1 != pair[1].0)
        .map(|index| index + 1)
        .unwrap_or(ranking.dnn_layers.len());
    let gpu_cost = gpu.end_to_end_criteo(
        &ranking.gpu_lookup_workload(),
        &ranking.dnn_layers[..split],
        &ranking.dnn_layers[split..],
        candidates,
    );
    Ok(EndToEndComparison {
        label: "Criteo end-to-end".to_string(),
        imars,
        gpu: gpu_cost,
        paper_latency_speedup: reference::SPEEDUP_END_TO_END_CRITEO.latency,
        paper_energy_ratio: reference::SPEEDUP_END_TO_END_CRITEO.energy,
    })
}

/// Configuration of the serve-cluster study.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStudyConfig {
    /// Number of replayed queries.
    pub queries: usize,
    /// Item catalogue size.
    pub num_items: usize,
    /// Hot-row cache capacity in rows (0 disables the cache).
    pub cache_rows: usize,
    /// Cache replacement/admission policy.
    pub cache_policy: CachePolicy,
    /// Cache placement: one router-side cache or per-shard-node caches.
    pub cache_placement: CachePlacement,
    /// Number of shard nodes (1 = single-node in-process sharding).
    pub shards: usize,
    /// Zipf exponent of the replayed traffic.
    pub zipf_exponent: f64,
    /// RNG seed of the replay.
    pub seed: u64,
}

impl ServeStudyConfig {
    /// A small, fast configuration for tests and smoke runs.
    pub fn small() -> Self {
        Self {
            queries: 384,
            num_items: 2048,
            cache_rows: 256,
            cache_policy: CachePolicy::Clock,
            cache_placement: CachePlacement::Router,
            shards: 1,
            zipf_exponent: 1.2,
            seed: 11,
        }
    }
}

/// Figures of merit of one serve replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeClusterFoms {
    /// The configuration the replay ran with.
    pub config: ServeStudyConfig,
    /// Hot-row cache hit rate.
    pub cache_hit_rate: f64,
    /// Modeled GPCiM + interconnect energy per query, picojoules.
    pub energy_pj_per_query: f64,
    /// Simulated p50 latency, microseconds.
    pub p50_us: f64,
    /// Simulated p95 latency, microseconds.
    pub p95_us: f64,
    /// Served throughput, queries per second.
    pub served_qps: f64,
    /// Cross-shard bytes moved over the RSC bus (multi-node runs only).
    pub cross_shard_bytes: Option<u64>,
    /// Shard load imbalance factor (multi-node runs only).
    pub shard_imbalance: Option<f64>,
    /// Peak per-window completion throughput over the scraped time series — a
    /// measured figure, like the latency quantiles, not a modeled one.
    pub peak_window_qps: f64,
    /// Number of non-empty windows the metrics scraper saw.
    pub metrics_windows: usize,
}

impl ServeClusterFoms {
    /// Render as a study row.
    pub fn study_row(&self) -> StudyRow {
        let mut row = StudyRow::new()
            .config_num("queries", self.config.queries as f64)
            .config_num("cache_rows", self.config.cache_rows as f64)
            .config_text("cache_policy", self.config.cache_policy.label())
            .config_text("cache_placement", self.config.cache_placement.label())
            .config_num("shards", self.config.shards as f64)
            .metric("cache_hit_rate", self.cache_hit_rate)
            .metric("energy_pj_per_query", self.energy_pj_per_query)
            .metric("p50_us", self.p50_us)
            .metric("p95_us", self.p95_us)
            .metric("served_qps", self.served_qps)
            .metric("peak_window_qps", self.peak_window_qps)
            .metric("metrics_windows", self.metrics_windows as f64);
        if let Some(bytes) = self.cross_shard_bytes {
            row = row.metric("cross_shard_kb", bytes as f64 / 1e3);
        }
        if let Some(imbalance) = self.shard_imbalance {
            row = row.metric("shard_imbalance", imbalance);
        }
        row
    }
}

fn serve_error(error: imars_serve::ServeError) -> CoreError {
    CoreError::InvalidExperiment {
        reason: format!("serve replay failed: {error}"),
    }
}

/// The DLRM the serving engine ranks with: the paper's layer widths over a pooled
/// 32-dimension item profile, with capped cardinalities so construction stays fast.
/// Shared with [`crate::cache_scaling`] so both serve studies rank identically.
pub(crate) fn serve_model() -> DlrmConfig {
    DlrmConfig {
        num_dense_features: 32,
        sparse_cardinalities: vec![1000; 8],
        embedding_dim: 32,
        bottom_hidden: vec![64, 32],
        top_hidden: vec![64, 1],
        seed: 42,
    }
}

/// Replay a Zipf trace through the serving engine (single-node or clustered) and roll up
/// the figures of merit the end-to-end study reports.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] when the replay cannot be configured or a
/// shard node fails.
pub fn serve_cluster_study(config: &ServeStudyConfig) -> Result<ServeClusterFoms, CoreError> {
    let model_config = serve_model();
    let items = EmbeddingTable::new(config.num_items, 32, 77)?;
    let workload = ReplayWorkload::generate(&ReplayConfig {
        queries: config.queries,
        num_users: (config.queries / 2).max(64),
        num_items: config.num_items,
        zipf_exponent: config.zipf_exponent,
        history_len: 32,
        offered_qps: 4_000.0,
        candidates_per_query: 100,
        top_k: 10,
        sparse_cardinalities: model_config.sparse_cardinalities.clone(),
        seed: config.seed,
        item_permutation_seed: if config.shards > 1 {
            Some(config.seed)
        } else {
            None
        },
    })
    .map_err(serve_error)?;
    let serve_config = {
        let mut serve_config =
            ServeConfig::paper_serving(config.cache_rows).map_err(serve_error)?;
        serve_config.shards = serve_config.shards.min(config.num_items.max(1));
        serve_config.cache_policy = config.cache_policy;
        serve_config.cache_placement = config.cache_placement;
        serve_config
    };
    let model = Dlrm::new(model_config)?;

    let (report, cluster_handle) = if config.shards > 1 {
        let cluster = ClusterConfig {
            shards: config.shards,
            workers_per_shard: 1,
            queue_capacity: 256,
            placement: Placement::Range,
            hot_replicas: 0,
            interconnect: Default::default(),
            resilience: None,
        };
        let (mut engine, handle) =
            ServeEngine::new_clustered(model, &items, serve_config, &cluster, None)
                .map_err(serve_error)?;
        engine.enable_metrics(workload.metrics_config(20));
        let outcome = engine.replay(&workload).map_err(serve_error)?;
        (outcome.report, Some(handle))
    } else {
        let mut engine = ServeEngine::new(model, &items, serve_config).map_err(serve_error)?;
        engine.enable_metrics(workload.metrics_config(20));
        let outcome = engine.replay(&workload).map_err(serve_error)?;
        (outcome.report, None)
    };
    if let Some(handle) = cluster_handle {
        handle.shutdown().map_err(serve_error)?;
    }

    let cluster = report.cluster.as_ref();
    let metrics = report.metrics.as_ref();
    Ok(ServeClusterFoms {
        config: config.clone(),
        cache_hit_rate: report.cache.hit_rate(),
        energy_pj_per_query: report.telemetry.energy_pj_per_query(),
        p50_us: report.telemetry.latency.quantile_us(0.50),
        p95_us: report.telemetry.latency.quantile_us(0.95),
        served_qps: report.telemetry.served_qps(),
        cross_shard_bytes: cluster.map(|c| c.cross_shard_bytes),
        shard_imbalance: cluster.map(|c| c.imbalance()),
        peak_window_qps: metrics
            .and_then(|series| series.peak_qps())
            .map_or(0.0, |(_, qps)| qps),
        metrics_windows: metrics.map_or(0, |series| series.windows.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EtLookupModel {
        EtLookupModel::paper_reference()
    }

    #[test]
    fn movielens_end_to_end_beats_gpu_and_paper_qps_is_bracketed() {
        let comparison = movielens_end_to_end(&model(), &GpuModel::gtx_1080(), 100).unwrap();
        assert!(comparison.latency_speedup() > 1.0);
        // The GPU model is calibrated to ~1311 qps; the iMARS model must land clearly
        // above the GPU and within an order of magnitude of the paper's 22,025 qps.
        assert!(comparison.gpu_qps() > 1000.0 && comparison.gpu_qps() < 1700.0);
        assert!(comparison.imars_qps() > comparison.gpu_qps());
        assert!(
            comparison.imars_qps() > 2_200.0 && comparison.imars_qps() < 220_250.0,
            "imars qps {}",
            comparison.imars_qps()
        );
    }

    #[test]
    fn criteo_end_to_end_beats_gpu() {
        let comparison = criteo_end_to_end(&model(), &GpuModel::gtx_1080(), 100).unwrap();
        assert!(comparison.latency_speedup() > 1.0);
        assert!(comparison.gpu.latency_us > 0.0);
        let row = comparison.study_row();
        assert!(row.get_metric("paper_latency_speedup").unwrap() > 1.0);
    }

    #[test]
    fn serve_study_runs_single_node() {
        let foms = serve_cluster_study(&ServeStudyConfig::small()).unwrap();
        assert!(foms.cache_hit_rate > 0.0 && foms.cache_hit_rate <= 1.0);
        assert!(foms.energy_pj_per_query > 0.0);
        assert!(foms.served_qps > 0.0);
        assert!(foms.p95_us >= foms.p50_us);
        assert!(foms.cross_shard_bytes.is_none());
        assert!(foms.metrics_windows > 0, "the time series must be scraped");
        assert!(
            foms.peak_window_qps > 0.0,
            "some window completed queries, so the peak is positive"
        );
        assert!(foms.study_row().get_metric("peak_window_qps").unwrap() > 0.0);
    }

    #[test]
    fn serve_study_runs_clustered_and_reports_interconnect() {
        let config = ServeStudyConfig {
            shards: 4,
            ..ServeStudyConfig::small()
        };
        let foms = serve_cluster_study(&config).unwrap();
        assert!(foms.cross_shard_bytes.unwrap() > 0);
        assert!(foms.shard_imbalance.unwrap() >= 1.0);
        let row = foms.study_row();
        assert!(row.get_metric("cross_shard_kb").is_some());
    }

    #[test]
    fn cache_cuts_modeled_energy() {
        let cold = serve_cluster_study(&ServeStudyConfig {
            cache_rows: 0,
            ..ServeStudyConfig::small()
        })
        .unwrap();
        let warm = serve_cluster_study(&ServeStudyConfig::small()).unwrap();
        assert_eq!(cold.cache_hit_rate, 0.0);
        assert!(
            warm.cache_hit_rate > 0.3,
            "hit rate {}",
            warm.cache_hit_rate
        );
        assert!(warm.energy_pj_per_query < cold.energy_pj_per_query);
    }
}
