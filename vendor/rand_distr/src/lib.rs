//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the two distributions the workspace samples — [`StandardNormal`] and
//! [`Normal`] — via the Box–Muller transform over the vendored `rand` generator.

use rand::RngCore;

/// A distribution that values of type `T` can be sampled from.
pub trait Distribution<T> {
    /// Draw one sample using `rng` as the entropy source.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// One standard-normal draw via Box–Muller (the second draw of the pair is discarded to
/// keep the generator state a pure function of the number of samples taken).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite; u2 in [0, 1).
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        standard_normal(rng) as f32
    }
}

/// Error returned for an invalid [`Normal`] parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadVariance => write!(f, "standard deviation must be finite and non-negative"),
            Self::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution N(mean, std_dev²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Self { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(3.0, 0.5).is_ok());
    }

    #[test]
    fn sample_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let normal = Normal::new(5.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn standard_normal_f32_and_f64_agree_in_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean32 = (0..n)
            .map(|_| <StandardNormal as Distribution<f32>>::sample(&StandardNormal, &mut rng))
            .sum::<f32>()
            / n as f32;
        assert!(mean32.abs() < 0.05, "mean {mean32}");
    }
}
