//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde derive macros are
//! unavailable. The codebase only ever *derives* `Serialize`/`Deserialize` — nothing
//! serializes at runtime — so the derives here are accepted and expand to nothing. If a
//! future change actually needs (de)serialization, vendor the real serde instead.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
