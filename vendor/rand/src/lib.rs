//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate provides the
//! exact API surface the workspace uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over (inclusive) integer and float ranges, and `Rng::gen_bool` —
//! backed by a deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s `StdRng` (ChaCha12); nothing in the
//! workspace depends on the specific stream, only on determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that uniform samples of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn sample_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 random bits into [0, 1).
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

impl_float_range!(f32, sample_f32; f64, sample_f64);

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let draws_a: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let draws_c: Vec<u64> = (0..10).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let v = rng.gen_range(0..=3usize);
            assert!(v <= 3);
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let d = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn integer_sampling_covers_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
