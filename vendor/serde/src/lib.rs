//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros from the local `serde_derive` stub so that
//! `use serde::{Deserialize, Serialize};` + `#[derive(Serialize, Deserialize)]` compile
//! without network access. No runtime (de)serialization is provided — nothing in this
//! workspace performs any.

pub use serde_derive::{Deserialize, Serialize};
