//! Facade crate for the iMARS reproduction workspace.
//!
//! Re-exports every layer of the stack under one roof so examples and downstream users
//! can depend on a single crate:
//!
//! * [`device`] — FeFET cells, crossbars, sense amplifiers, adder trees;
//! * [`fabric`] — the CMA fabric simulator (RAM/TCAM/GPCiM modes) and its cost model;
//! * [`recsys`] — DLRM / YouTubeDNN models, embedding tables, NNS, quantization;
//! * [`datasets`] — synthetic MovieLens/Criteo-style data and Zipf traffic;
//! * [`serve`] — the sharded, dynamically-batched serving engine with hot-row caching
//!   and Zipf traffic replay;
//! * [`gpu`] — the calibrated GPU baseline cost models;
//! * [`core`] — system assembly: ET-to-fabric mapping and paper workloads.

pub use imars_core as core;
pub use imars_datasets as datasets;
pub use imars_device as device;
pub use imars_fabric as fabric;
pub use imars_gpu as gpu;
pub use imars_recsys as recsys;
pub use imars_serve as serve;
